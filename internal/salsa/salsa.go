// Package salsa implements the per-output approximate-synthesis baseline
// BLASYS is compared against in the paper's Table 3 (SALSA, Venkataramani et
// al., DAC'12).
//
// SALSA's defining property — the one the BLASYS paper's comparison hinges
// on — is that each output bit is approximated *individually*: the quality
// function exposes don't-cares for one output at a time, and conventional
// don't-care-based synthesis shrinks that output's cone. This package
// reproduces that behaviour with two transform families applied greedily,
// least-significant outputs first, each accepted only if the whole-circuit
// QoR stays within the error threshold:
//
//   - constant substitution: an output is tied to 0 or 1 (the limiting case
//     of external don't-cares covering the full input space);
//   - cone resynthesis under injected don't-cares: a bounded-input window of
//     the output's cone is extracted, a fraction of its most "isolated"
//     minterms (those blocking cube merging) is declared don't-care, and the
//     window is re-synthesized with two-level minimization.
//
// The original SALSA derives its don't-cares from a quality-constraint
// circuit instead of an isolation heuristic, but the structural limitation
// the paper measures — no cross-output sharing of approximation — is
// faithfully preserved, which is what makes this a meaningful baseline.
package salsa

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"github.com/blasys-go/blasys/internal/logic"
	"github.com/blasys-go/blasys/internal/qor"
	"github.com/blasys-go/blasys/internal/synth"
	"github.com/blasys-go/blasys/internal/tt"
)

// Config controls the baseline.
type Config struct {
	// Metric and Threshold define the QoR budget (same semantics as the
	// BLASYS core).
	Metric    qor.Metric
	Threshold float64
	// Samples is the Monte-Carlo sample count for QoR checks.
	Samples int
	Seed    int64
	// MaxConeInputs bounds the resynthesis window (default 10, mirroring
	// the BLASYS k).
	MaxConeInputs int
	// MaxPasses bounds the greedy sweeps over all outputs (default 3).
	MaxPasses int
	// Parallelism bounds candidate evaluation concurrency (0 = GOMAXPROCS).
	Parallelism int
	// Sequence, when non-nil, evaluates QoR with accumulator feedback.
	Sequence *qor.Sequence
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.05
	}
	if c.Samples == 0 {
		c.Samples = 1 << 16
	}
	if c.MaxConeInputs == 0 {
		c.MaxConeInputs = 10
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 3
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Result is the outcome of the baseline run.
type Result struct {
	Circuit  *logic.Circuit
	Report   qor.Report
	Accepted int // transforms applied
}

// dcFractions are the don't-care budgets tried per cone, strongest first.
var dcFractions = []float64{0.5, 0.25, 0.125, 0.0625}

// Approximate runs the per-output greedy baseline.
func Approximate(c *logic.Circuit, spec qor.OutputSpec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	cur := logic.ReorderDFS(c)
	eval, err := qor.NewComparer(cur, spec, cfg.Sequence, cfg.Samples, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Visit outputs in increasing significance so cheap bits go first.
	order := outputOrder(cur, spec)
	accepted := 0
	lastReport := qor.Report{Samples: eval.Samples()}

	for pass := 0; pass < cfg.MaxPasses; pass++ {
		changed := false
		for _, o := range order {
			cands := candidates(cur, o, cfg)
			if len(cands) == 0 {
				continue
			}
			reports := make([]qor.Report, len(cands))
			errs := make([]error, len(cands))
			evalAll(cands, reports, errs, eval, cfg.Parallelism)
			// Accept the smallest candidate within threshold.
			bestIdx, bestGates := -1, cur.NumGates()
			for i, cand := range cands {
				if errs[i] != nil {
					continue
				}
				if reports[i].Value(cfg.Metric) > cfg.Threshold {
					continue
				}
				if g := cand.NumGates(); g < bestGates {
					bestGates, bestIdx = g, i
				}
			}
			if bestIdx >= 0 {
				cur = cands[bestIdx]
				lastReport = reports[bestIdx]
				accepted++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return &Result{Circuit: cur, Report: lastReport, Accepted: accepted}, nil
}

func evalAll(cands []*logic.Circuit, reports []qor.Report, errs []error, eval qor.Comparer, par int) {
	sem := make(chan struct{}, par)
	done := make(chan int, len(cands))
	for i := range cands {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; done <- i }()
			reports[i], errs[i] = eval.Compare(cands[i])
		}(i)
	}
	for range cands {
		<-done
	}
}

// outputOrder lists output indices least-significant first within each
// group, groups interleaved by relative significance.
func outputOrder(c *logic.Circuit, spec qor.OutputSpec) []int {
	type ranked struct {
		bit int
		sig float64
	}
	var rs []ranked
	seen := make(map[int]bool)
	for _, g := range spec.Groups {
		for j, bit := range g.Bits {
			rs = append(rs, ranked{bit, float64(j) / float64(len(g.Bits))})
			seen[bit] = true
		}
	}
	for o := 0; o < len(c.Outputs); o++ {
		if !seen[o] {
			rs = append(rs, ranked{o, 0})
		}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].sig < rs[j].sig })
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.bit
	}
	return out
}

// candidates builds the transform candidates for output o on the current
// circuit. Every candidate is a complete swept circuit.
func candidates(cur *logic.Circuit, o int, cfg Config) []*logic.Circuit {
	var out []*logic.Circuit
	driver := cur.Outputs[o]
	if cur.Nodes[driver].Op == logic.Const0 || cur.Nodes[driver].Op == logic.Const1 {
		return nil // already constant
	}
	// Constant substitutions.
	for _, v := range []bool{false, true} {
		cc := cur.Clone()
		cc.Outputs[o] = cc.ConstNode(v)
		out = append(out, logic.Sweep(cc))
	}
	// Cone resynthesis under don't-cares.
	leaves, ok := coneWindow(cur, driver, cfg.MaxConeInputs)
	if !ok {
		return out
	}
	table := coneTable(cur, driver, leaves)
	for _, frac := range dcFractions {
		dc := isolationDC(table, frac)
		if dc.CountOnes() == 0 {
			continue
		}
		cc := cur.Clone()
		b := logic.WrapBuilder(cc)
		newOut := synth.FromTable(b, table, dc, leaves, synth.Options{})
		b.C.Outputs[o] = newOut
		out = append(out, logic.Sweep(b.C))
	}
	return out
}

// coneWindow grows a bounded-input window of the cone rooted at driver:
// starting from the root, gate leaves are expanded into their fanins while
// the leaf count stays within maxInputs. Returns ok=false for degenerate
// windows (root is a PI or the window never expands).
func coneWindow(c *logic.Circuit, driver logic.NodeID, maxInputs int) ([]logic.NodeID, bool) {
	isExpandable := func(id logic.NodeID) bool {
		switch c.Nodes[id].Op {
		case logic.Input, logic.Const0, logic.Const1:
			return false
		}
		return true
	}
	if !isExpandable(driver) {
		return nil, false
	}
	leaves := []logic.NodeID{driver}
	expanded := true
	for expanded {
		expanded = false
		// Expand the deepest expandable leaf first (largest node id —
		// closest to the root, keeping the window balanced).
		sort.Slice(leaves, func(i, j int) bool { return leaves[i] > leaves[j] })
		for li, l := range leaves {
			if !isExpandable(l) {
				continue
			}
			fan := c.Nodes[l].Fanins()
			// Unique new leaves after expansion.
			next := make(map[logic.NodeID]bool, len(leaves)+2)
			for lj, x := range leaves {
				if lj != li {
					next[x] = true
				}
			}
			for _, f := range fan {
				switch c.Nodes[f].Op {
				case logic.Const0, logic.Const1:
				default:
					next[f] = true
				}
			}
			if len(next) > maxInputs {
				continue
			}
			leaves = leaves[:0]
			for x := range next {
				leaves = append(leaves, x)
			}
			expanded = true
			break
		}
	}
	if len(leaves) == 1 && leaves[0] == driver {
		return nil, false
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	return leaves, true
}

// coneTable computes the root's function over the window leaves by
// simulating the cone with counting patterns on the leaves.
func coneTable(c *logic.Circuit, root logic.NodeID, leaves []logic.NodeID) *tt.Table {
	k := len(leaves)
	table := tt.NewTable(k)
	// Evaluate the cone only: nodes between leaves and root.
	leafPos := make(map[logic.NodeID]int, k)
	for i, l := range leaves {
		leafPos[l] = i
	}
	words := make(map[logic.NodeID]uint64, 64)
	var eval func(id logic.NodeID, base int) uint64
	eval = func(id logic.NodeID, base int) uint64 {
		if p, ok := leafPos[id]; ok {
			return countingWord(p, base)
		}
		if w, ok := words[id]; ok {
			return w
		}
		n := &c.Nodes[id]
		var a, bb, s uint64
		switch n.Op {
		case logic.Const0:
			return 0
		case logic.Const1:
			return ^uint64(0)
		case logic.Input:
			// An input that is not a leaf cannot be reached: the window
			// stops at inputs.
			panic(fmt.Sprintf("salsa: cone evaluation reached non-leaf input %d", id))
		}
		a = eval(n.Fanin[0], base)
		if n.Nfanin > 1 {
			bb = eval(n.Fanin[1], base)
		}
		if n.Nfanin > 2 {
			s = eval(n.Fanin[2], base)
		}
		w := n.Op.Eval(a, bb, s)
		words[id] = w
		return w
	}
	rows := 1 << uint(k)
	for base := 0; base < rows; base += 64 {
		for id := range words {
			delete(words, id)
		}
		w := eval(root, base)
		limit := rows - base
		if limit > 64 {
			limit = 64
		}
		for j := 0; j < limit; j++ {
			if w&(1<<uint(j)) != 0 {
				table.Set(base+j, true)
			}
		}
	}
	return table
}

func countingWord(i, base int) uint64 {
	if i < 6 {
		var pat uint64
		block := uint(1) << uint(i)
		for b := uint(0); b < 64; b += 2 * block {
			pat |= ((uint64(1) << block) - 1) << (b + block)
		}
		return pat
	}
	if (base>>uint(i))&1 == 1 {
		return ^uint64(0)
	}
	return 0
}

// isolationDC selects up to frac*2^k minterms as don't-cares, preferring
// minterms whose value disagrees with most of their distance-1 neighbours —
// exactly the minterms that block cube merging in two-level covers.
func isolationDC(table *tt.Table, frac float64) *tt.Table {
	k := table.NumVars()
	rows := table.Len()
	budget := int(math.Ceil(frac * float64(rows)))
	type scored struct {
		r     int
		score int
	}
	var sc []scored
	for r := 0; r < rows; r++ {
		v := table.Get(r)
		disagree := 0
		for i := 0; i < k; i++ {
			if table.Get(r^(1<<uint(i))) != v {
				disagree++
			}
		}
		if disagree*2 > k {
			sc = append(sc, scored{r, disagree})
		}
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].score > sc[j].score })
	dc := tt.NewTable(k)
	for i := 0; i < len(sc) && i < budget; i++ {
		dc.Set(sc[i].r, true)
	}
	return dc
}

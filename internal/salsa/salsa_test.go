package salsa

import (
	"testing"

	"github.com/blasys-go/blasys/internal/logic"
	"github.com/blasys-go/blasys/internal/qor"
	"github.com/blasys-go/blasys/internal/techmap"
	"github.com/blasys-go/blasys/internal/tt"
)

func rippleAdder(n int) *logic.Circuit {
	b := logic.NewBuilder("adder")
	as := b.Inputs("a", n)
	bs := b.Inputs("b", n)
	carry := b.Const(false)
	var sums []logic.NodeID
	for i := 0; i < n; i++ {
		axb := b.Xor(as[i], bs[i])
		sums = append(sums, b.Xor(axb, carry))
		carry = b.Or(b.And(as[i], bs[i]), b.And(axb, carry))
	}
	sums = append(sums, carry)
	b.Outputs("s", sums)
	return b.C
}

func TestBaselineReducesAreaWithinThreshold(t *testing.T) {
	c := rippleAdder(12)
	spec := qor.Unsigned("sum", 13)
	cfg := Config{Threshold: 0.05, Samples: 1 << 12, Seed: 3}
	res, err := Approximate(c, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Fatal("baseline accepted no transforms on a 12-bit adder at 5%")
	}
	// Verify the reported error independently.
	eval, err := qor.NewEvaluator(logic.ReorderDFS(c), spec, 1<<13, 77)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eval.Compare(res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgRel > 2*cfg.Threshold {
		t.Errorf("independent error %v far above threshold %v", rep.AvgRel, cfg.Threshold)
	}
	// Mapped area must shrink.
	lib := techmap.DefaultLibrary()
	orig, err := techmap.Map(logic.ReorderDFS(c), lib)
	if err != nil {
		t.Fatal(err)
	}
	appr, err := techmap.Map(res.Circuit, lib)
	if err != nil {
		t.Fatal(err)
	}
	if appr.Area() >= orig.Area() {
		t.Errorf("baseline area %.1f >= original %.1f", appr.Area(), orig.Area())
	}
}

func TestBaselineZeroThresholdKeepsFunction(t *testing.T) {
	c := rippleAdder(6)
	spec := qor.Unsigned("sum", 7)
	cfg := Config{Threshold: 1e-9, Samples: 1 << 12, Seed: 5}
	res, err := Approximate(c, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := qor.NewEvaluator(logic.ReorderDFS(c), spec, 1<<12, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eval.Compare(res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing above threshold 1e-9 can be accepted except exact rewrites.
	if rep.AvgRel > 1e-9 {
		t.Errorf("zero-threshold baseline changed the function: %v", rep.AvgRel)
	}
}

func TestConeWindow(t *testing.T) {
	c := logic.ReorderDFS(rippleAdder(8))
	for o, driver := range c.Outputs {
		if c.Nodes[driver].Op == logic.Const0 || c.Nodes[driver].Op == logic.Const1 ||
			c.Nodes[driver].Op == logic.Input {
			continue
		}
		leaves, ok := coneWindow(c, driver, 8)
		if !ok {
			continue
		}
		if len(leaves) > 8 {
			t.Fatalf("output %d: window has %d leaves", o, len(leaves))
		}
		// The extracted table must match direct evaluation on the window.
		table := coneTable(c, driver, leaves)
		if table.NumVars() != len(leaves) {
			t.Fatalf("output %d: table vars %d != leaves %d", o, table.NumVars(), len(leaves))
		}
	}
}

func TestIsolationDC(t *testing.T) {
	// XOR function: every minterm disagrees with all neighbours; the DC
	// selector should find plenty of candidates and respect the budget.
	x := tt.Var(4, 0).Xor(tt.Var(4, 1)).Xor(tt.Var(4, 2)).Xor(tt.Var(4, 3))
	dc := isolationDC(x, 0.25)
	if dc.CountOnes() == 0 {
		t.Fatal("no don't-cares selected for XOR")
	}
	if dc.CountOnes() > 4 {
		t.Fatalf("budget exceeded: %d DCs for frac 0.25 of 16", dc.CountOnes())
	}
	// A constant function has no isolated minterms.
	flat := tt.NewTable(4)
	if got := isolationDC(flat, 0.5).CountOnes(); got != 0 {
		t.Errorf("constant function got %d DCs", got)
	}
}

func TestOutputOrderLSBFirst(t *testing.T) {
	c := rippleAdder(4)
	spec := qor.Unsigned("sum", 5)
	order := outputOrder(c, spec)
	if len(order) != 5 {
		t.Fatalf("order has %d entries", len(order))
	}
	if order[0] != 0 || order[len(order)-1] != 4 {
		t.Errorf("order %v not LSB-first", order)
	}
}

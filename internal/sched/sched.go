// Package sched provides the machine-wide goroutine budget shared by every
// parallel fan-out in the flow: the BMF tau sweep (internal/bmf), the
// explorer's per-step candidate sweep (internal/core), and any future
// data-parallel stage. The flow's parallelism nests — engine workers run
// jobs whose profiling is parallel across blocks, each block factorization
// sweeps taus in parallel, and each exploration step sweeps candidates in
// parallel — so letting every layer size its own pool at GOMAXPROCS would
// oversubscribe the CPU multiplicatively. Instead, every layer asks this
// package for a token per *extra* goroutine and runs the work inline on the
// calling goroutine when none is available. The calling goroutine itself
// never needs a token (it is already running), so the steady state is at
// most GOMAXPROCS spawned goroutines machine-wide on top of the callers,
// and no fan-out ever blocks waiting for a token.
//
// Correctness never depends on a token being granted: a denied TryAcquire
// only serializes work that would otherwise run concurrently. Callers must
// therefore keep their sharding and reduction deterministic regardless of
// how many tokens they win (see core's candidate sweep and bmf.Factorize).
package sched

import (
	"runtime"

	"github.com/blasys-go/blasys/internal/telemetry"
)

// tokens is the machine-wide budget: one slot per logical CPU at init.
var tokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// Telemetry: since TryAcquire never blocks, "token acquisition wait" shows
// up not as latency but as the grant/deny split — every deny is work that
// ran inline (serialized) instead of on an extra goroutine. The in-use
// gauge exposes instantaneous budget pressure.
var (
	mAcquired = telemetry.Default().Counter(
		"blasys_sched_tokens_acquired_total",
		"Goroutine tokens granted by the machine-wide budget.")
	mInline = telemetry.Default().Counter(
		"blasys_sched_inline_runs_total",
		"Token denials, i.e. fan-out work serialized onto the calling goroutine.")
	mInUse = telemetry.Default().Gauge(
		"blasys_sched_tokens_in_use",
		"Goroutine tokens currently held.")
)

// TryAcquire claims one goroutine token without blocking. It returns true
// when the caller may spawn one extra worker goroutine; the caller must
// Release the token when that goroutine finishes. On false the caller runs
// the work inline instead.
func TryAcquire() bool {
	select {
	case tokens <- struct{}{}:
		mAcquired.Inc()
		mInUse.Add(1)
		return true
	default:
		mInline.Inc()
		return false
	}
}

// Release returns a token claimed by TryAcquire.
func Release() {
	<-tokens
	mInUse.Add(-1)
}

// Budget reports the total token count (the machine-wide cap on extra
// worker goroutines).
func Budget() int { return cap(tokens) }

// InUse reports how many tokens are currently held.
func InUse() int { return len(tokens) }

// Pressure reports the fraction of the machine-wide goroutine budget
// currently in use, in [0, 1]. Admission control reads it as a slowdown
// signal: near 1, running jobs are executing below their configured
// parallelism (their fan-outs are being serialized inline), so queue-drain
// estimates based on historical run times are optimistic.
func Pressure() float64 {
	if cap(tokens) == 0 {
		return 0
	}
	return float64(len(tokens)) / float64(cap(tokens))
}

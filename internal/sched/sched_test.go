package sched

import (
	"runtime"
	"sync"
	"testing"
)

func TestBudgetMatchesGOMAXPROCS(t *testing.T) {
	if got, want := Budget(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Budget() = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestTryAcquireBoundsTokens(t *testing.T) {
	n := Budget()
	acquired := 0
	for i := 0; i < n+3; i++ {
		if TryAcquire() {
			acquired++
		}
	}
	if acquired != n {
		t.Errorf("acquired %d tokens, want exactly the budget %d", acquired, n)
	}
	// Over-budget attempts must fail, not block.
	if TryAcquire() {
		t.Error("TryAcquire succeeded beyond the budget")
	}
	for i := 0; i < acquired; i++ {
		Release()
	}
	if !TryAcquire() {
		t.Error("TryAcquire failed after all tokens were released")
	}
	Release()
}

func TestConcurrentAcquireRelease(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if TryAcquire() {
					Release()
				}
			}
		}()
	}
	wg.Wait()
	// Every claimed token must have been returned.
	n := Budget()
	got := 0
	for TryAcquire() {
		got++
	}
	for i := 0; i < got; i++ {
		Release()
	}
	if got != n {
		t.Errorf("after churn, %d tokens available, want %d", got, n)
	}
}

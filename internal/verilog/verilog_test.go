package verilog

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/blasys-go/blasys/internal/logic"
	"github.com/blasys-go/blasys/internal/techmap"
)

func sampleCircuit() *logic.Circuit {
	b := logic.NewBuilder("sample")
	a := b.Input("a")
	x := b.Input("b[0]") // hostile name, must be sanitized
	c := b.Input("c")
	g := b.Mux(a, b.Xor(x, c), b.Nand(x, c))
	b.Output("y", g)
	b.Output("const_out", b.Const(true))
	return b.C
}

func TestWriteStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleCircuit()); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{"module sample(", "input a;", "output y;", "endmodule", "1'b1"} {
		if !strings.Contains(v, want) {
			t.Errorf("output missing %q:\n%s", want, v)
		}
	}
	if strings.Contains(v, "[0]") {
		t.Errorf("unsanitized identifier leaked:\n%s", v)
	}
	// Every assign's RHS operands must be declared (inputs, wires, consts).
	if strings.Count(v, "assign") < 3 {
		t.Errorf("expected several assigns:\n%s", v)
	}
}

func TestWriteMapped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := logic.NewBuilder("m")
	ins := b.Inputs("x", 5)
	acc := ins[0]
	for i := 1; i < 5; i++ {
		if rng.Intn(2) == 0 {
			acc = b.And(acc, ins[i])
		} else {
			acc = b.Xor(acc, ins[i])
		}
	}
	b.Output("y", acc)
	mapped, err := techmap.Map(b.C, techmap.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMapped(&buf, mapped); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	if !strings.Contains(v, "module m(") || !strings.Contains(v, "endmodule") {
		t.Errorf("malformed module:\n%s", v)
	}
	// One instance line per cell.
	if got := strings.Count(v, ".Z("); got != mapped.NumCells() {
		t.Errorf("%d instances written for %d cells", got, mapped.NumCells())
	}
}

func TestWriteFile(t *testing.T) {
	path := t.TempDir() + "/c.v"
	if err := WriteFile(path, sampleCircuit()); err != nil {
		t.Fatal(err)
	}
}

// Package verilog writes gate-level netlists and technology-mapped netlists
// as synthesizable structural Verilog, so results of the flow can be taken
// into any downstream tool.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/blasys-go/blasys/internal/logic"
	"github.com/blasys-go/blasys/internal/techmap"
)

// Write emits the circuit as a single Verilog module built from continuous
// assignments.
func Write(w io.Writer, c *logic.Circuit) error {
	bw := bufio.NewWriter(w)
	names := netNames(c)
	outNames := outputNames(c)

	ports := make([]string, 0, len(c.Inputs)+len(c.Outputs))
	for _, in := range c.Inputs {
		ports = append(ports, names[in])
	}
	ports = append(ports, outNames...)
	fmt.Fprintf(bw, "module %s(%s);\n", sanitize(c.Name, "top"), strings.Join(ports, ", "))
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "  input %s;\n", names[in])
	}
	for _, n := range outNames {
		fmt.Fprintf(bw, "  output %s;\n", n)
	}

	live := c.TransitiveFanin(c.Outputs...)
	for i := range c.Nodes {
		if !live[i] {
			continue
		}
		switch c.Nodes[i].Op {
		case logic.Const0, logic.Const1, logic.Input:
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", names[i])
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if !live[i] {
			continue
		}
		switch n.Op {
		case logic.Const0, logic.Const1, logic.Input:
			continue
		}
		fmt.Fprintf(bw, "  assign %s = %s;\n", names[i], expr(n, names))
	}
	for i, o := range c.Outputs {
		fmt.Fprintf(bw, "  assign %s = %s;\n", outNames[i], operand(o, names))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// WriteFile writes the circuit to a Verilog file.
func WriteFile(path string, c *logic.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Write(f, c)
}

func expr(n *logic.Node, names []string) string {
	a := operand(n.Fanin[0], names)
	var b, s string
	if n.Nfanin > 1 {
		b = operand(n.Fanin[1], names)
	}
	if n.Nfanin > 2 {
		s = operand(n.Fanin[2], names)
	}
	switch n.Op {
	case logic.Buf:
		return a
	case logic.Not:
		return "~" + a
	case logic.And:
		return a + " & " + b
	case logic.Or:
		return a + " | " + b
	case logic.Xor:
		return a + " ^ " + b
	case logic.Nand:
		return "~(" + a + " & " + b + ")"
	case logic.Nor:
		return "~(" + a + " | " + b + ")"
	case logic.Xnor:
		return "~(" + a + " ^ " + b + ")"
	case logic.Mux:
		return a + " ? " + s + " : " + b
	}
	panic(fmt.Sprintf("verilog: cannot serialize op %s", n.Op))
}

func operand(id logic.NodeID, names []string) string {
	switch id {
	case 0:
		return "1'b0"
	case 1:
		return "1'b1"
	}
	return names[id]
}

func netNames(c *logic.Circuit) []string {
	names := make([]string, len(c.Nodes))
	used := make(map[string]bool)
	for i, in := range c.Inputs {
		n := sanitize(c.InputNames[i], fmt.Sprintf("pi%d", i))
		for used[n] {
			n += "_"
		}
		used[n] = true
		names[in] = n
	}
	for i := range c.Nodes {
		if names[i] != "" {
			continue
		}
		n := fmt.Sprintf("n%d", i)
		for used[n] {
			n += "_"
		}
		used[n] = true
		names[i] = n
	}
	return names
}

func outputNames(c *logic.Circuit) []string {
	used := make(map[string]bool)
	out := make([]string, len(c.Outputs))
	for i := range c.Outputs {
		n := sanitize(c.OutputNames[i], fmt.Sprintf("po%d", i))
		for used[n] {
			n += "_"
		}
		used[n] = true
		out[i] = n
	}
	return out
}

func sanitize(s, fallback string) string {
	if s == "" {
		return fallback
	}
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out == "" || (out[0] >= '0' && out[0] <= '9') {
		out = "s_" + out
	}
	return out
}

// WriteMapped emits a technology-mapped netlist as a Verilog module with one
// cell instance per line (cells as module instantiations against the
// library's cell names).
func WriteMapped(w io.Writer, m *techmap.Mapped) error {
	bw := bufio.NewWriter(w)
	nets := make([]string, m.NumInputs+len(m.Instances))
	used := make(map[string]bool)
	for i := 0; i < m.NumInputs; i++ {
		name := ""
		if i < len(m.InputNames) {
			name = m.InputNames[i]
		}
		n := sanitize(name, fmt.Sprintf("pi%d", i))
		for used[n] {
			n += "_"
		}
		used[n] = true
		nets[i] = n
	}
	for j := range m.Instances {
		n := fmt.Sprintf("w%d", j)
		for used[n] {
			n += "_"
		}
		used[n] = true
		nets[m.NumInputs+j] = n
	}
	outs := make([]string, len(m.Outputs))
	for i := range m.Outputs {
		name := ""
		if i < len(m.OutputNames) {
			name = m.OutputNames[i]
		}
		n := sanitize(name, fmt.Sprintf("po%d", i))
		for used[n] {
			n += "_"
		}
		used[n] = true
		outs[i] = n
	}

	ports := append(append([]string{}, nets[:m.NumInputs]...), outs...)
	fmt.Fprintf(bw, "module %s(%s);\n", sanitize(m.Name, "top"), strings.Join(ports, ", "))
	for i := 0; i < m.NumInputs; i++ {
		fmt.Fprintf(bw, "  input %s;\n", nets[i])
	}
	for _, o := range outs {
		fmt.Fprintf(bw, "  output %s;\n", o)
	}
	for j := range m.Instances {
		fmt.Fprintf(bw, "  wire %s;\n", nets[m.NumInputs+j])
	}
	for j, inst := range m.Instances {
		cell := m.Lib.Cells[inst.Cell]
		fmt.Fprintf(bw, "  %s u%d(", cell.Name, j)
		for p, f := range inst.Fanins {
			fmt.Fprintf(bw, ".I%d(%s), ", p, nets[f])
		}
		fmt.Fprintf(bw, ".Z(%s));\n", nets[m.NumInputs+j])
	}
	for i, o := range m.Outputs {
		fmt.Fprintf(bw, "  assign %s = %s;\n", outs[i], nets[o])
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

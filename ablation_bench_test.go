// Ablation benchmarks for the design choices documented in DESIGN.md:
// each compares a mechanism against its switched-off variant and reports the
// quality delta as benchmark metrics.
package blasys_test

import (
	"math/rand"
	"testing"

	"github.com/blasys-go/blasys/internal/bench"
	"github.com/blasys-go/blasys/internal/bmf"
	"github.com/blasys-go/blasys/internal/core"
	"github.com/blasys-go/blasys/internal/logic"
	"github.com/blasys-go/blasys/internal/partition"
	"github.com/blasys-go/blasys/internal/techmap"
	"github.com/blasys-go/blasys/internal/tt"
)

// BenchmarkAblationPartitionRefine measures the boundary-net reduction the
// KL-style refinement buys over plain greedy intervals.
func BenchmarkAblationPartitionRefine(b *testing.B) {
	c := logic.ReorderDFS(bench.Mult8().Circ)
	cost := func(blocks []partition.Block) int {
		n := 0
		for _, blk := range blocks {
			n += len(blk.Inputs) + len(blk.Outputs)
		}
		return n
	}
	var refined, plain int
	for i := 0; i < b.N; i++ {
		r, err := partition.Decompose(c, partition.Options{MaxInputs: 10, MaxOutputs: 10})
		if err != nil {
			b.Fatal(err)
		}
		p, err := partition.Decompose(c, partition.Options{MaxInputs: 10, MaxOutputs: 10, DisableRefine: true})
		if err != nil {
			b.Fatal(err)
		}
		refined, plain = cost(r), cost(p)
	}
	reportMetric(b, float64(refined), "refined-boundary-nets")
	reportMetric(b, float64(plain), "plain-boundary-nets")
}

// BenchmarkAblationBMFRefinement measures the error reduction of the exact
// per-row refinement over greedy ASSO on random matrices.
func BenchmarkAblationBMFRefinement(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mats := make([]*tt.Matrix, 16)
	for i := range mats {
		m := tt.NewMatrix(256, 8)
		for r := 0; r < 256; r++ {
			for c := 0; c < 8; c++ {
				m.Set(r, c, rng.Intn(2) == 1)
			}
		}
		mats[i] = m
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		with, without = 0, 0
		for _, m := range mats {
			rw, err := bmf.Factorize(m, 4, bmf.Options{})
			if err != nil {
				b.Fatal(err)
			}
			ro, err := bmf.Factorize(m, 4, bmf.Options{SkipRefine: true})
			if err != nil {
				b.Fatal(err)
			}
			with += rw.Hamming
			without += ro.Hamming
		}
	}
	reportMetric(b, float64(with), "hamming-with-refine")
	reportMetric(b, float64(without), "hamming-without-refine")
}

// BenchmarkAblationBasis compares the column (structural) basis against the
// unrestricted ASSO basis on a Mult8 block profile: error at equal degree
// and, critically, the mapped area of the resulting block implementations.
func BenchmarkAblationBasis(b *testing.B) {
	bm := bench.Mult8()
	for _, basis := range []core.Basis{core.BasisColumns, core.BasisASSO} {
		basis := basis
		b.Run(basis.String(), func(b *testing.B) {
			var savings float64
			for i := 0; i < b.N; i++ {
				lib := techmap.DefaultLibrary()
				accurate, err := techmap.Map(logic.ReorderDFS(bm.Circ), lib)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Approximate(bm.Circ, bm.Spec, core.Config{
					Samples: 1 << 12, Seed: 1, Threshold: 0.05, Basis: basis,
					Lib: lib, MaxSteps: 60,
				})
				if err != nil {
					b.Fatal(err)
				}
				met, _, err := res.FinalMetrics(res.BestStep, 1<<12)
				if err != nil {
					b.Fatal(err)
				}
				savings = 100 * (accurate.Area() - met.Area) / accurate.Area()
			}
			reportMetric(b, savings, "area-savings-%")
		})
	}
}

// BenchmarkAblationLazyExploration compares lazy-greedy against the
// paper-literal exhaustive greedy: final savings and exploration work.
func BenchmarkAblationLazyExploration(b *testing.B) {
	bm := bench.Mult8()
	lib := techmap.DefaultLibrary()
	for _, lazy := range []bool{false, true} {
		lazy := lazy
		name := "exhaustive"
		if lazy {
			name = "lazy"
		}
		b.Run(name, func(b *testing.B) {
			var savings float64
			for i := 0; i < b.N; i++ {
				accurate, err := techmap.Map(logic.ReorderDFS(bm.Circ), lib)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Approximate(bm.Circ, bm.Spec, core.Config{
					Samples: 1 << 12, Seed: 1, Threshold: 0.05, Lazy: lazy, Lib: lib,
				})
				if err != nil {
					b.Fatal(err)
				}
				met, _, err := res.FinalMetrics(res.BestStep, 1<<12)
				if err != nil {
					b.Fatal(err)
				}
				savings = 100 * (accurate.Area() - met.Area) / accurate.Area()
			}
			reportMetric(b, savings, "area-savings-%")
		})
	}
}

// BenchmarkAblationSemiring compares OR-semiring against XOR-field
// decompressors end to end.
func BenchmarkAblationSemiring(b *testing.B) {
	bm := bench.Mult8()
	lib := techmap.DefaultLibrary()
	for _, sr := range []bmf.Semiring{bmf.Or, bmf.Xor} {
		sr := sr
		b.Run(sr.String(), func(b *testing.B) {
			var savings float64
			for i := 0; i < b.N; i++ {
				accurate, err := techmap.Map(logic.ReorderDFS(bm.Circ), lib)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Approximate(bm.Circ, bm.Spec, core.Config{
					Samples: 1 << 12, Seed: 1, Threshold: 0.05, Semiring: sr,
					Lib: lib, MaxSteps: 60,
				})
				if err != nil {
					b.Fatal(err)
				}
				met, _, err := res.FinalMetrics(res.BestStep, 1<<12)
				if err != nil {
					b.Fatal(err)
				}
				savings = 100 * (accurate.Area() - met.Area) / accurate.Area()
			}
			reportMetric(b, savings, "area-savings-%")
		})
	}
}

//go:build ignore

// Command doccheck is the docs CI gate: it walks every markdown file in the
// repository and fails on dead intra-repo links — a relative link target
// (path or path#anchor) that does not exist on disk. External links
// (http/https/mailto) and pure in-page anchors are not checked.
//
// Usage, from the repository root:
//
//	go run scripts/doccheck.go
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Images ![alt](target)
// match too via the optional bang.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "node_modules" || strings.HasPrefix(name, ".claude") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}

	broken := 0
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipTarget(target) {
					continue
				}
				// Strip an anchor; the file's existence is what we verify.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
					if target == "" {
						continue // pure in-page anchor
					}
				}
				resolved := filepath.Join(filepath.Dir(md), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Printf("%s: broken link -> %s (resolved %s)\n", md, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken intra-repo link(s) across %d markdown files\n", broken, len(mdFiles))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d markdown files, all intra-repo links resolve\n", len(mdFiles))
}

func skipTarget(t string) bool {
	switch {
	case strings.HasPrefix(t, "http://"), strings.HasPrefix(t, "https://"),
		strings.HasPrefix(t, "mailto:"), strings.HasPrefix(t, "#"):
		return true
	// Placeholder-style targets in code examples ("<path>", "$VAR").
	case strings.ContainsAny(t, "<>$"):
		return true
	}
	return false
}

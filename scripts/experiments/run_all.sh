#!/usr/bin/env bash
# Run every in-tree experiment grid and collect dated run folders under
# experiments/ (override with OUT=...). Fails if any grid's pass criterion
# fails, so the committed DESIGN.md claims stay regenerable with one command:
#
#   ./scripts/experiments/run_all.sh
#
# A fixed STAMP=YYYY-MM-DD_hhmmss makes the folder names reproducible.
set -euo pipefail
cd "$(dirname "$0")/../.."

OUT="${OUT:-experiments}"
STAMP="${STAMP:-$(date -u +%Y-%m-%d_%H%M%S)}"

go build -o /tmp/blasys-exp ./cmd/blasys-exp

status=0
for grid in scripts/experiments/*.json; do
  name="$(basename "$grid" .json)"
  echo "=== $name ==="
  if ! /tmp/blasys-exp -grid "$grid" -out "$OUT" -stamp "$STAMP" -quiet; then
    echo "FAIL: $name" >&2
    status=1
  fi
done
exit $status

// Command bench_check is the CI bench-regression gate: it compares a freshly
// written BENCH_<date>.json (see scripts/bench.sh and the root package's
// -benchjson flag) against a committed baseline record and fails when a
// watched throughput metric regressed beyond the tolerance.
//
// The default watch set covers the hot-path headline throughputs
// (candidate-evals/sec, explore-steps/sec, batch-candidate-evals/sec) plus
// the same-process speedup ratios (candidate-eval-speedup-x,
// explore-speedup-x, batch-speedup-x). The ratios compare two legs measured
// in the same run, so machine speed cancels out and they stay meaningful
// across dissimilar hardware; the absolute rates catch regressions the
// ratios cannot (both legs slowing down together) but are inherently noisier
// when baseline and fresh records come from different machines or a loaded
// runner — tune -max-regress or -units if the gate proves flaky in a given
// CI fleet. Metrics present in the baseline but missing from the fresh
// record are reported as failures too — a silently vanished benchmark must
// not pass the gate.
//
// -ceilings gates absolute upper bounds on the FRESH record alone, without
// needing a baseline row: 'batch-allocs/op=8' fails the gate if any fresh
// metric with unit batch-allocs/op exceeds 8, and also fails if no fresh
// metric carries that unit at all (a vanished benchmark must not pass). This
// is how per-op allocation budgets on the fused batch path are enforced —
// allocation counts are machine-independent, so a hard ceiling is reliable
// where absolute throughput is not. The same mechanism bounds the decode
// fraction ('batch-decode-fraction=0.90'): a dimensionless within-run ratio
// (decode seconds / simulate seconds, see internal/qor/metrics.go), so a
// decode-path regression fails the gate even on a runner whose absolute
// throughput differs wildly from the baseline machine's.
//
// Usage:
//
//	go run scripts/bench_check.go -new BENCH_ci.json
//	go run scripts/bench_check.go -new BENCH_ci.json -baseline BENCH_2026-07-29.json \
//	    -max-regress 0.30 -units 'candidate-evals/sec,explore-steps/sec' \
//	    -ceilings 'batch-allocs/op=8'
//
// Without -baseline, the lexicographically newest BENCH_*.json in the
// current directory other than -new is used (file names embed ISO dates, so
// lexicographic order is chronological order).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// benchMetric and benchReport mirror the shapes written by the root
// package's -benchjson flag (bench_json_test.go).
type benchMetric struct {
	Bench string  `json:"bench"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
}

type benchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Metrics    []benchMetric `json:"metrics"`
}

func main() {
	var (
		newPath    = flag.String("new", "", "freshly written BENCH_<date>.json (required)")
		basePath   = flag.String("baseline", "", "committed baseline record (default: newest BENCH_*.json other than -new)")
		maxRegress = flag.Float64("max-regress", 0.30, "maximum tolerated fractional drop per watched metric")
		unitsFlag  = flag.String("units",
			"candidate-evals/sec,explore-steps/sec,candidate-eval-speedup-x,explore-speedup-x,"+
				"batch-candidate-evals/sec,batch-speedup-x",
			"comma-separated metric units to gate on")
		ceilFlag = flag.String("ceilings", "",
			"comma-separated unit=max pairs checked against the fresh record only (e.g. 'batch-allocs/op=8')")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "bench_check: -new is required")
		flag.Usage()
		os.Exit(2)
	}
	ceilings, err := splitCeilings(*ceilFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_check:", err)
		os.Exit(2)
	}
	if err := run(*newPath, *basePath, *maxRegress, splitUnits(*unitsFlag), ceilings); err != nil {
		fmt.Fprintln(os.Stderr, "bench_check:", err)
		os.Exit(1)
	}
}

func splitUnits(s string) map[string]bool {
	units := make(map[string]bool)
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			units[u] = true
		}
	}
	return units
}

// splitCeilings parses 'unit=max,unit=max' into a map of per-unit upper
// bounds.
func splitCeilings(s string) (map[string]float64, error) {
	ceilings := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		if pair = strings.TrimSpace(pair); pair == "" {
			continue
		}
		unit, maxStr, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad -ceilings entry %q: want unit=max", pair)
		}
		var limit float64
		if _, err := fmt.Sscanf(strings.TrimSpace(maxStr), "%g", &limit); err != nil {
			return nil, fmt.Errorf("bad -ceilings limit %q: %v", maxStr, err)
		}
		ceilings[strings.TrimSpace(unit)] = limit
	}
	return ceilings, nil
}

func run(newPath, basePath string, maxRegress float64, units map[string]bool, ceilings map[string]float64) error {
	if basePath == "" {
		var err error
		if basePath, err = latestBaseline(newPath); err != nil {
			return err
		}
	}
	fresh, err := readReport(newPath)
	if err != nil {
		return err
	}
	base, err := readReport(basePath)
	if err != nil {
		return err
	}
	fmt.Printf("baseline %s (%s, %d CPU) vs fresh %s (%s, %d CPU), tolerance %.0f%%\n",
		basePath, base.Date, base.NumCPU, newPath, fresh.Date, fresh.NumCPU, 100*maxRegress)

	freshBy := make(map[string]float64, len(fresh.Metrics))
	for _, m := range fresh.Metrics {
		freshBy[m.Bench+"|"+m.Unit] = m.Value
	}
	var failures []string
	checked := 0
	for _, m := range base.Metrics {
		if !units[m.Unit] || m.Value <= 0 {
			continue
		}
		checked++
		got, ok := freshBy[m.Bench+"|"+m.Unit]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s [%s]: missing from fresh record", m.Bench, m.Unit))
			continue
		}
		change := got/m.Value - 1
		status := "ok"
		if change < -maxRegress {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s [%s]: %.1f -> %.1f (%+.1f%%)",
				m.Bench, m.Unit, m.Value, got, 100*change))
		}
		fmt.Printf("  %-60s %-22s %12.1f -> %12.1f  %+7.1f%%  %s\n",
			m.Bench, m.Unit, m.Value, got, 100*change, status)
	}
	if checked == 0 {
		return fmt.Errorf("baseline %s has no metrics with watched units %v — wrong file or wrong -units",
			basePath, keys(units))
	}
	// Ceilings gate the fresh record alone: machine-independent budgets
	// (allocation counts) that must hold regardless of baseline history.
	ceilUnits := make([]string, 0, len(ceilings))
	for u := range ceilings {
		ceilUnits = append(ceilUnits, u)
	}
	sort.Strings(ceilUnits)
	for _, unit := range ceilUnits {
		limit := ceilings[unit]
		seen := 0
		for _, m := range fresh.Metrics {
			if m.Unit != unit {
				continue
			}
			seen++
			status := "ok"
			if m.Value > limit {
				status = "OVER CEILING"
				failures = append(failures, fmt.Sprintf("%s [%s]: %.2f exceeds ceiling %.2f",
					m.Bench, m.Unit, m.Value, limit))
			}
			fmt.Printf("  %-60s %-22s %12.2f <= %12.2f            %s\n", m.Bench, m.Unit, m.Value, limit, status)
		}
		if seen == 0 {
			failures = append(failures, fmt.Sprintf("[%s]: no fresh metric carries this ceiling unit", unit))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%% or broke a ceiling:\n  %s",
			len(failures), 100*maxRegress, strings.Join(failures, "\n  "))
	}
	fmt.Printf("bench gate passed: %d metric(s) within tolerance, %d ceiling unit(s) honored\n",
		checked, len(ceilings))
	return nil
}

// latestBaseline picks the newest BENCH_*.json beside newPath, excluding
// newPath itself.
func latestBaseline(newPath string) (string, error) {
	dir := filepath.Dir(newPath)
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	newAbs, _ := filepath.Abs(newPath)
	var cands []string
	for _, m := range matches {
		if abs, _ := filepath.Abs(m); abs == newAbs {
			continue
		}
		cands = append(cands, m)
	}
	if len(cands) == 0 {
		return "", fmt.Errorf("no committed BENCH_*.json baseline found in %s", dir)
	}
	sort.Strings(cands)
	return cands[len(cands)-1], nil
}

func readReport(path string) (*benchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Metrics) == 0 {
		return nil, fmt.Errorf("%s: no metrics recorded", path)
	}
	return &r, nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

#!/usr/bin/env bash
# serve_smoke.sh — end-to-end durability smoke for blasys-serve.
#
# Exercises the persistence subsystem the way an operator hits it:
#
#   phase 1  start with -store-dir, submit a job, wait for completion,
#            kill -TERM the process, restart it with the same store, and
#            assert the finished result (status, result.blif, frontier CSV)
#            is still served — byte-identical to the pre-kill download.
#   phase 2  submit a longer job, kill -TERM mid-exploration, restart, let
#            the resumed job finish, then run the identical job fresh on the
#            same server and assert both produce byte-identical result.blif
#            and frontier dumps (resume-from-checkpoint == uninterrupted).
#
# Along the way the telemetry surface is scraped: /metrics before the kill
# must count the completed job and carry the stage histograms with data;
# after the restart it must count the restored job; and the restored job's
# /timeline must still serve the journaled stage spans.
#
# No jq dependency: job ids are cut out of the pretty-printed JSON with sed.
#
# Usage: scripts/serve_smoke.sh [path-to-blasys-serve-binary]
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="${1:-}"
if [ -z "$BIN" ]; then
	BIN=$(mktemp -t blasys-serve.XXXXXX)
	go build -o "$BIN" ./cmd/blasys-serve
fi

ADDR=127.0.0.1:8719
BASE="http://$ADDR"
STORE=$(mktemp -d -t blasys-store.XXXXXX)
WORK=$(mktemp -d -t blasys-smoke.XXXXXX)
PID=""

cleanup() {
	[ -n "$PID" ] && kill "$PID" 2>/dev/null || true
	rm -rf "$STORE" "$WORK"
}
trap cleanup EXIT

fail() {
	echo "serve_smoke: FAIL: $*" >&2
	exit 1
}

start_server() { # [extra server flags...]
	"$BIN" -addr "$ADDR" -workers 1 -store-dir "$STORE" "$@" >>"$WORK/serve.log" 2>&1 &
	PID=$!
	for _ in $(seq 1 100); do
		# Readiness (not just liveness): the API handler is live and the
		# store replay finished — during replay /readyz answers 503.
		if curl -fs "$BASE/readyz" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.1
	done
	cat "$WORK/serve.log" >&2
	fail "server did not become ready"
}

# metrics_has <pattern> — assert one line of the current /metrics page
# matches the extended regex. The page is buffered first: piping curl
# straight into grep -q trips pipefail when grep exits on an early match.
metrics_has() {
	local page
	page=$(curl -fs "$BASE/metrics") || fail "/metrics fetch failed"
	grep -Eq "$1" <<<"$page" || fail "/metrics missing: $1"
}

stop_server() {
	kill -TERM "$PID"
	wait "$PID" 2>/dev/null || true
	PID=""
}

# submit JSON -> job id on stdout
submit() {
	curl -fs -X POST "$BASE/v1/jobs" -d "$1" |
		sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -1
}

job_state() {
	curl -fs "$BASE/v1/jobs/$1?trace=0" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1
}

wait_done() {
	local job=$1 tries=${2:-600}
	for _ in $(seq 1 "$tries"); do
		case "$(job_state "$job")" in
		done) return 0 ;;
		failed | cancelled) fail "job $job reached $(job_state "$job")" ;;
		esac
		sleep 0.2
	done
	fail "job $job did not finish in time"
}

fetch_artifacts() { # job prefix
	curl -fs "$BASE/v1/jobs/$1/result.blif" -o "$WORK/$2.blif"
	curl -fs "$BASE/v1/jobs/$1/frontier?format=csv&points=1" -o "$WORK/$2.csv"
	[ -s "$WORK/$2.blif" ] || fail "$2.blif is empty"
}

echo "== phase 1: finished results survive kill -TERM + restart"
start_server
JOB1=$(submit '{"benchmark": "Fig3", "config": {"samples": 4096, "seed": 7, "explore_fully": true}}')
[ -n "$JOB1" ] || fail "phase 1 submission returned no job id"
wait_done "$JOB1"
fetch_artifacts "$JOB1" before
# Telemetry before the kill: the completed job is counted and the stage
# histograms carry observations from the run.
metrics_has '^blasys_jobs_completed_total 1$'
metrics_has '^blasys_engine_run_seconds_count 1$'
metrics_has '^blasys_engine_queue_wait_seconds_count 1$'
metrics_has '^blasys_bmf_factorize_seconds_count\{family="columns"\} [1-9]'
metrics_has '^blasys_core_candidate_eval_seconds_count [1-9]'
metrics_has '^blasys_store_checkpoint_write_seconds_count [1-9]'
stop_server

start_server
state=$(job_state "$JOB1")
[ "$state" = "done" ] || fail "restarted server reports job $JOB1 as '$state', want done"
fetch_artifacts "$JOB1" after
cmp "$WORK/before.blif" "$WORK/after.blif" || fail "result.blif changed across restart"
cmp "$WORK/before.csv" "$WORK/after.csv" || fail "frontier changed across restart"
# Telemetry after the restart: the fresh process counted the restored job
# and its replayed timeline still serves the journaled stage spans.
metrics_has '^blasys_jobs_restored_total 1$'
metrics_has '^blasys_store_replay_seconds_count 1$'
TIMELINE=$(curl -fs "$BASE/v1/jobs/$JOB1/timeline") || fail "timeline fetch failed"
grep -q '"name": "run"' <<<"$TIMELINE" ||
	fail "restored job timeline lost its run span"
echo "   ok: $JOB1 served byte-identically after restart (metrics + timeline intact)"

echo "== phase 2: kill mid-exploration, resume == uninterrupted"
LONGCFG='{"benchmark": "Mult8", "config": {"samples": 131072, "seed": 11, "explore_fully": true, "max_steps": 60}}'
JOB2=$(submit "$LONGCFG")
[ -n "$JOB2" ] || fail "phase 2 submission returned no job id"
# Kill once the exploration is demonstrably under way (first trace point
# committed => its checkpoint is on disk), well before the ~60-step walk ends.
for _ in $(seq 1 300); do
	if curl -fs "$BASE/v1/jobs/$JOB2" | grep -q '"trace"'; then
		break
	fi
	sleep 0.1
done
stop_server

start_server
# The interrupted job was re-enqueued and resumes from its checkpoint; the
# startup log records the replay outcome.
grep -q "store replayed.*resumed=1" "$WORK/serve.log" ||
	echo "   note: job finished before the kill landed; comparing terminal results instead"
wait_done "$JOB2" 1200
fetch_artifacts "$JOB2" resumed

# Reference: the identical configuration, uninterrupted, on the same server.
JOB3=$(submit "$LONGCFG")
[ -n "$JOB3" ] || fail "reference submission returned no job id"
wait_done "$JOB3" 1200
fetch_artifacts "$JOB3" reference

cmp "$WORK/resumed.blif" "$WORK/reference.blif" ||
	fail "resumed result.blif differs from the uninterrupted run"
cmp "$WORK/resumed.csv" "$WORK/reference.csv" ||
	fail "resumed frontier differs from the uninterrupted run"
echo "   ok: $JOB2 resumed to a byte-identical result ($JOB3 reference)"

echo "== phase 3: SSE events endpoint streams and terminates"
EVENTS=$(curl -fs -N --max-time 30 "$BASE/v1/jobs/$JOB2/events" || true)
echo "$EVENTS" | grep -q "^event: state" || fail "no state event in SSE stream"
echo "$EVENTS" | grep -q '"state":"done"' || fail "no terminal done event in SSE stream"
echo "   ok: events endpoint replayed history and closed with the terminal state"
stop_server

echo "== phase 4: disk dies mid-run -> degraded, heals -> reconciled"
start_server -fault-admin
JOB4=$(submit '{"benchmark": "Mult8", "config": {"samples": 65536, "seed": 5, "explore_fully": true, "max_steps": 40}}')
[ -n "$JOB4" ] || fail "phase 4 submission returned no job id"
# Let the run commit at least one step before the disk "fails".
for _ in $(seq 1 300); do
	if curl -fs "$BASE/v1/jobs/$JOB4" | grep -q '"trace"'; then
		break
	fi
	sleep 0.1
done

# Kill every store write path, and the recovery probe with it, through the
# fault-admin surface — no chmod games, works as any user.
curl -fs -X POST "$BASE/debug/faults" \
	-d 'journal.append:err=eio;journal.sync:err=eio;checkpoint.write:err=enospc;probe:err=eio' >/dev/null ||
	fail "arming the fault schedule failed"

# The next store write exhausts its retries and trips the breaker: /readyz
# flips to 503 "degraded" while /healthz stays 200.
READY=""
for _ in $(seq 1 300); do
	READY=$(curl -s "$BASE/readyz")
	if grep -q '"status": "degraded"' <<<"$READY"; then
		break
	fi
	sleep 0.1
done
grep -q '"status": "degraded"' <<<"$READY" || fail "/readyz never reported degraded: $READY"
grep -q '"breaker": "open"' <<<"$READY" || fail "degraded /readyz lacks breaker state: $READY"
curl -fs "$BASE/healthz" >/dev/null || fail "/healthz went down while degraded"
metrics_has '^blasys_engine_degraded 1$'
metrics_has '^blasys_store_breaker_state [12]$'

# Degraded is not down: the job keeps stepping, memory-only.
trace_count() { curl -fs "$BASE/v1/jobs/$1" | grep -c '"step"' || true; }
T0=$(trace_count "$JOB4")
progressed=""
for _ in $(seq 1 300); do
	state=$(job_state "$JOB4")
	if [ "$state" = "done" ] || [ "$(trace_count "$JOB4")" -gt "$T0" ]; then
		progressed=1
		break
	fi
	sleep 0.1
done
[ -n "$progressed" ] || fail "job made no progress while degraded"

# The disk heals: disarm the schedule, the breaker's background probe
# closes it (default cadence 1s), and the engine reconciles the journal.
curl -fs -X DELETE "$BASE/debug/faults" >/dev/null || fail "clearing faults failed"
for _ in $(seq 1 300); do
	if curl -fs "$BASE/readyz" >/dev/null 2>&1; then
		break
	fi
	sleep 0.1
done
curl -fs "$BASE/readyz" >/dev/null || fail "/readyz never recovered after faults cleared"
metrics_has '^blasys_engine_degraded 0$'
metrics_has '^blasys_store_probes_total\{outcome="recovered"\} [1-9]'
# Whichever write hit the dead disk first carried the retries; the rest
# short-circuited as degraded drops. Assert the retry counter moved at all.
metrics_has '^blasys_store_retries_total\{op="[a-z_]+"\} [1-9]'
wait_done "$JOB4" 1200
fetch_artifacts "$JOB4" degraded
stop_server

# Reconciliation proof: a fresh process replays the journal that lived
# through the outage and serves the same terminal result.
start_server
state=$(job_state "$JOB4")
[ "$state" = "done" ] || fail "reconciled job replayed as '$state', want done"
fetch_artifacts "$JOB4" reconciled
cmp "$WORK/degraded.blif" "$WORK/reconciled.blif" ||
	fail "reconciled journal served different result.blif"
cmp "$WORK/degraded.csv" "$WORK/reconciled.csv" ||
	fail "reconciled journal served a different frontier"
echo "   ok: $JOB4 ran through the outage; reconciled journal replays byte-identically"

stop_server
echo "serve_smoke: PASS"

#!/usr/bin/env sh
# bench.sh — run the benchmark suite and record the perf trajectory.
#
# Runs the root-package paper-reproduction benchmarks (Tables 1-3, Figures
# 3-5, ablations, engine speedup) plus the hot-loop microbenchmarks
# (BenchmarkFactorize / BenchmarkCompare / BenchmarkExplore, which record
# candidate-evals/sec, explore-steps/sec, the parallel candidate-sweep
# speedup, allocs/op, and the incremental engine's speedups over the pre-PR
# full-rebuild path) and the internal/engine service benchmarks. The root
# suite's headline metrics are written to BENCH_<date>.json in the repo root
# via the -benchjson test flag; -benchmem adds allocation figures to the
# textual output.
#
# go test runs directly (never behind a pipeline, whose exit status would be
# the downstream command's) and its exit code is checked explicitly, so a
# benchmark failure fails the script even though the JSON writer runs from
# TestMain afterwards — and output streams live.
#
# Microbenchmarks here measure single hot loops; the multi-seed experiment
# grids that regenerate DESIGN.md's claims (with pass-criteria verdicts)
# live next door: ./scripts/experiments/run_all.sh, docs/EXPERIMENTS.md.
#
# Usage:
#   scripts/bench.sh                      # full suite, BENCH_$(date +%F).json
#   scripts/bench.sh 'Compare|Explore'    # only benchmarks matching the pattern
#   scripts/bench.sh -workers 8           # worker count for the parallel-sweep leg
#   scripts/bench.sh -benchbatch 8        # lane width for the fused batch legs
#   scripts/bench.sh -f                   # overwrite an existing output file
#   OUT=custom.json scripts/bench.sh      # override the output file
#
# -benchbatch feeds the batch-kernel legs of BenchmarkCompare (the per-block
# candidate ladder evaluated through qor.CompareCandidates) and
# BenchmarkExplore (the Result.BlockErrorProfiles surface); they report
# batch-candidate-evals/sec, batch-allocs/op and batch-speedup-x rows into
# the BENCH record.
#
# An existing output file is never clobbered without -f: committed
# BENCH_<date>.json records are the bench-regression gate's baseline, and a
# silent overwrite would rewrite the trajectory the gate compares against.
set -eu

cd "$(dirname "$0")/.."

PATTERN='.'
WORKERS=''
BATCH=''
FORCE=''
while [ $# -gt 0 ]; do
	case "$1" in
	-workers)
		[ $# -ge 2 ] || { echo "bench.sh: -workers needs a value" >&2; exit 2; }
		WORKERS="$2"
		shift 2
		;;
	-benchbatch)
		[ $# -ge 2 ] || { echo "bench.sh: -benchbatch needs a value" >&2; exit 2; }
		BATCH="$2"
		shift 2
		;;
	-f)
		FORCE=1
		shift
		;;
	*)
		PATTERN="$1"
		shift
		;;
	esac
done

OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"

# Create the output directory if the caller pointed OUT somewhere deep, and
# refuse to overwrite an existing record unless forced.
OUT_DIR=$(dirname "$OUT")
[ -d "$OUT_DIR" ] || mkdir -p "$OUT_DIR"
if [ -e "$OUT" ] && [ -z "$FORCE" ]; then
	echo "bench.sh: $OUT already exists; re-run with -f to overwrite" >&2
	exit 2
fi

# check_status NAME STATUS: fail loudly instead of relying on set -e alone,
# so a non-zero go test exit can never be masked by later steps.
check_status() {
	if [ "$2" -ne 0 ]; then
		echo "bench.sh: $1 failed (exit $2)" >&2
		exit "$2"
	fi
}

echo "== root benchmarks (pattern: $PATTERN${WORKERS:+, workers: $WORKERS}${BATCH:+, batch: $BATCH}) -> $OUT"
status=0
go test . -run '^$' -bench "$PATTERN" -benchtime 1x -benchmem \
	-timeout 60m -benchjson "$OUT" ${WORKERS:+-workers "$WORKERS"} \
	${BATCH:+-benchbatch "$BATCH"} || status=$?
check_status "root benchmarks" "$status"

echo "== engine service benchmarks"
status=0
go test ./internal/engine -run '^$' -bench . -benchtime 1x -benchmem -timeout 30m || status=$?
check_status "engine benchmarks" "$status"

echo "== wrote $OUT"

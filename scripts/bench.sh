#!/usr/bin/env sh
# bench.sh — run the benchmark suite and record the perf trajectory.
#
# Runs the root-package paper-reproduction benchmarks (Tables 1-3, Figures
# 3-5, ablations, engine speedup) plus the hot-loop microbenchmarks
# (BenchmarkFactorize / BenchmarkCompare / BenchmarkExplore, which record
# candidate-evals/sec, explore-steps/sec, the parallel candidate-sweep
# speedup, allocs/op, and the incremental engine's speedups over the pre-PR
# full-rebuild path) and the internal/engine service benchmarks. The root
# suite's headline metrics are written to BENCH_<date>.json in the repo root
# via the -benchjson test flag; -benchmem adds allocation figures to the
# textual output.
#
# go test runs directly (never behind a pipeline, whose exit status would be
# the downstream command's) and its exit code is checked explicitly, so a
# benchmark failure fails the script even though the JSON writer runs from
# TestMain afterwards — and output streams live.
#
# Usage:
#   scripts/bench.sh                      # full suite, BENCH_$(date +%F).json
#   scripts/bench.sh 'Compare|Explore'    # only benchmarks matching the pattern
#   scripts/bench.sh -workers 8           # worker count for the parallel-sweep leg
#   OUT=custom.json scripts/bench.sh      # override the output file
set -eu

cd "$(dirname "$0")/.."

PATTERN='.'
WORKERS=''
while [ $# -gt 0 ]; do
	case "$1" in
	-workers)
		[ $# -ge 2 ] || { echo "bench.sh: -workers needs a value" >&2; exit 2; }
		WORKERS="$2"
		shift 2
		;;
	*)
		PATTERN="$1"
		shift
		;;
	esac
done

OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"

# check_status NAME STATUS: fail loudly instead of relying on set -e alone,
# so a non-zero go test exit can never be masked by later steps.
check_status() {
	if [ "$2" -ne 0 ]; then
		echo "bench.sh: $1 failed (exit $2)" >&2
		exit "$2"
	fi
}

echo "== root benchmarks (pattern: $PATTERN${WORKERS:+, workers: $WORKERS}) -> $OUT"
status=0
go test . -run '^$' -bench "$PATTERN" -benchtime 1x -benchmem \
	-timeout 60m -benchjson "$OUT" ${WORKERS:+-workers "$WORKERS"} || status=$?
check_status "root benchmarks" "$status"

echo "== engine service benchmarks"
status=0
go test ./internal/engine -run '^$' -bench . -benchtime 1x -benchmem -timeout 30m || status=$?
check_status "engine benchmarks" "$status"

echo "== wrote $OUT"

#!/usr/bin/env sh
# bench.sh — run the benchmark suite and record the perf trajectory.
#
# Runs the root-package paper-reproduction benchmarks (Tables 1-3, Figures
# 3-5, ablations, engine speedup) plus the hot-loop microbenchmarks
# (BenchmarkFactorize / BenchmarkCompare / BenchmarkExplore, which record
# candidate-evals/sec, explore-steps/sec, allocs/op, and the incremental
# engine's speedups over the pre-PR full-rebuild path) and the
# internal/engine service benchmarks. The root suite's headline metrics are
# written to BENCH_<date>.json in the repo root via the -benchjson test flag;
# -benchmem adds allocation figures to the textual output.
#
# Usage:
#   scripts/bench.sh                  # full suite, BENCH_$(date +%F).json
#   scripts/bench.sh 'Compare|Explore'  # only benchmarks matching the pattern
#   OUT=custom.json scripts/bench.sh  # override the output file
set -eu

cd "$(dirname "$0")/.."

PATTERN="${1:-.}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"

echo "== root benchmarks (pattern: $PATTERN) -> $OUT"
go test . -run '^$' -bench "$PATTERN" -benchtime 1x -benchmem -timeout 60m -benchjson "$OUT"

echo "== engine service benchmarks"
go test ./internal/engine -run '^$' -bench . -benchtime 1x -benchmem -timeout 30m

echo "== wrote $OUT"

// Micro-benchmarks for the exploration hot loops: BMF factorization,
// candidate QoR evaluation (full rebuild vs incremental cone simulation),
// and end-to-end exploration. Each records its headline rates through
// reportMetric so scripts/bench.sh lands candidate-evals/sec,
// explore-steps/sec, allocs/op, and the incremental-vs-full speedups in
// BENCH_<date>.json.
package blasys_test

import (
	"context"
	"math"
	mathbits "math/bits"
	"runtime"
	"testing"
	"time"

	"github.com/blasys-go/blasys/internal/bench"
	"github.com/blasys-go/blasys/internal/bmf"
	"github.com/blasys-go/blasys/internal/core"
	"github.com/blasys-go/blasys/internal/logic"
	"github.com/blasys-go/blasys/internal/partition"
	"github.com/blasys-go/blasys/internal/qor"
	"github.com/blasys-go/blasys/internal/telemetry"
)

// phaseCounters taps the qor evaluator's simulate/decode phase counters
// through the process-global registry (get-or-create by name, so these are
// the same counters internal/qor increments). Deltas around a timed leg
// attribute the leg's decode share — the Amdahl denominator the lane-shared
// decode (internal/qor decode.go) exists to shrink.
func phaseCounters() (sim, dec *telemetry.Counter) {
	r := telemetry.Default()
	return r.Counter("blasys_qor_eval_sim_seconds_total", ""),
		r.Counter("blasys_qor_eval_decode_seconds_total", "")
}

// phaseDelta captures the simulate/decode counter deltas around a timed leg;
// fraction is decode's share of the simulate window (0 when none accrued).
type phaseDelta struct{ sim, dec float64 }

func measurePhases(fn func()) phaseDelta {
	sim, dec := phaseCounters()
	sim0, dec0 := sim.Value(), dec.Value()
	fn()
	return phaseDelta{sim: sim.Value() - sim0, dec: dec.Value() - dec0}
}

func (p phaseDelta) fraction() float64 {
	if p.sim > 0 {
		return p.dec / p.sim
	}
	return 0
}

// BenchmarkFactorize measures bmf.Factorize (ASSO + tau sweep + exact row
// refinement) on a real Mult8 block truth matrix across all degrees.
func BenchmarkFactorize(b *testing.B) {
	prepared := logic.ReorderDFS(bench.Mult8().Circ)
	blocks, err := partition.Decompose(prepared, partition.Options{MaxInputs: 10, MaxOutputs: 10})
	if err != nil {
		b.Fatal(err)
	}
	// Factorize the widest block: the worst-case inner loop.
	best := -1
	for bi, blk := range blocks {
		if len(blk.Inputs) > 16 || len(blk.Outputs) < 2 {
			continue
		}
		if best < 0 || len(blk.Outputs) > len(blocks[best].Outputs) {
			best = bi
		}
	}
	if best < 0 {
		b.Fatal("no factorizable block")
	}
	M, err := partition.TruthMatrix(prepared, blocks[best])
	if err != nil {
		b.Fatal(err)
	}
	maxF := len(blocks[best].Outputs) - 1
	if maxF > bmf.MaxDegree {
		maxF = bmf.MaxDegree
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f := 1; f <= maxF; f++ {
			if _, err := bmf.Factorize(M, f, bmf.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// profileOnly runs decomposition + profiling without exploration (MaxSteps
// -1 makes the explorer commit zero steps), returning the profiles both
// candidate-evaluation paths consume.
func profileOnly(b *testing.B, bm bench.Circuit, cfg core.Config) *core.Result {
	b.Helper()
	cfg.MaxSteps = -1
	res, err := core.Approximate(bm.Circ, bm.Spec, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// measureAllocs runs fn and returns its duration and mallocs.
func measureAllocs(fn func()) (time.Duration, uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs
}

// preprCompare replicates the seed's candidate evaluation exactly: a fresh
// simulator per comparison and the per-lane decode loop without any cached
// reference decodes, per-batch partial folding, or buffer pooling. It is the
// in-tree "pre-PR" baseline the recorded speedups are measured against.
func preprCompare(eval *qor.Evaluator, spec qor.OutputSpec, approx *logic.Circuit) qor.Report {
	sim := logic.NewSimulator(approx)
	out := make([]uint64, len(approx.Outputs))
	rep := qor.Report{Samples: eval.Samples(), Exact: false}
	nGroups := len(spec.Groups)
	sumRel := make([]float64, nGroups)
	sumAbs := make([]float64, nGroups)
	sumSq := make([]float64, nGroups)
	var hamming, errSamples int64
	decode := func(words []uint64, g *qor.Group, lane uint) float64 {
		var v uint64
		for j, bit := range g.Bits {
			v |= ((words[bit] >> lane) & 1) << uint(j)
		}
		if g.Signed {
			n := uint(len(g.Bits))
			if v&(1<<(n-1)) != 0 {
				return float64(int64(v) - int64(1)<<n)
			}
		}
		return float64(v)
	}
	nBatches := (eval.Samples() + 63) / 64
	for bi := 0; bi < nBatches; bi++ {
		sim.Run(eval.InputWords(bi), out)
		refOut := eval.ReferenceWords(bi)
		var anyDiff uint64
		for o := range out {
			d := out[o] ^ refOut[o]
			hamming += int64(mathbits.OnesCount64(d))
			anyDiff |= d
		}
		errSamples += int64(mathbits.OnesCount64(anyDiff))
		if anyDiff == 0 {
			continue
		}
		for gi := range spec.Groups {
			g := &spec.Groups[gi]
			var groupDiff uint64
			for _, bit := range g.Bits {
				groupDiff |= out[bit] ^ refOut[bit]
			}
			for lanes := groupDiff; lanes != 0; lanes &= lanes - 1 {
				lane := uint(mathbits.TrailingZeros64(lanes))
				rv := decode(refOut, g, lane)
				av := decode(out, g, lane)
				abs := math.Abs(av - rv)
				rel := abs / math.Max(math.Abs(rv), 1)
				sumAbs[gi] += abs
				sumSq[gi] += abs * abs
				sumRel[gi] += rel
				if rel > rep.WorstRel {
					rep.WorstRel = rel
				}
			}
		}
	}
	n := float64(eval.Samples())
	for gi := range spec.Groups {
		rep.AvgRel += sumRel[gi] / n
		rep.AvgAbs += sumAbs[gi] / n
		rep.MeanSquared += sumSq[gi] / n
	}
	rep.MeanHam = float64(hamming) / n
	rep.ErrRate = float64(errSamples) / n
	return rep
}

// BenchmarkCompare measures single-candidate QoR evaluation throughput at a
// mid-exploration committed state (where exploration spends its time): the
// pre-PR path (ReplaceBlocks rebuild + whole-circuit resimulation with the
// seed's metric loop) against the incremental cone path, reporting
// candidate-evals/sec, allocs/op, and the speedup for each circuit.
func BenchmarkCompare(b *testing.B) {
	const samples = 1 << 16 // the core default used during exploration
	for _, name := range []string{"Mult8", "Adder32", "BUT", "FIR", "MAC", "SAD"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			res := profileOnly(b, bm, core.Config{Samples: samples, Seed: benchSeed})
			blocks := make([]partition.Block, len(res.Profiles))
			type cand struct {
				bi   int
				impl *logic.Circuit
			}
			var cands []cand
			for bi, p := range res.Profiles {
				blocks[bi] = p.Block
				if n := len(p.Variants); n > 0 {
					cands = append(cands, cand{bi, p.Variants[n-1].Impl})
				}
			}
			eval, err := qor.NewEvaluator(res.Circuit, bm.Spec, samples, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			ic, err := qor.NewIncrementalComparer(res.Circuit, bm.Spec, blocks, samples, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			// Commit every third candidate so evaluation runs on a partially
			// approximated circuit, as it does mid-exploration.
			committed := map[int]*logic.Circuit{}
			for i := 0; i < len(cands); i += 3 {
				committed[cands[i].bi] = cands[i].impl
				if _, err := ic.Commit(cands[i].bi, cands[i].impl); err != nil {
					b.Fatal(err)
				}
			}
			var live []cand
			for _, c := range cands {
				if _, done := committed[c.bi]; !done {
					live = append(live, c)
				}
			}
			trialImpls := func(c cand) map[int]*logic.Circuit {
				m := make(map[int]*logic.Circuit, len(committed)+1)
				for bi, impl := range committed {
					m[bi] = impl
				}
				m[c.bi] = c.impl
				return m
			}
			preprEval := func(c cand) {
				circ, err := logic.ReplaceBlocks(res.Circuit, partition.Substitutions(blocks, trialImpls(c)))
				if err != nil {
					b.Fatal(err)
				}
				preprCompare(eval, bm.Spec, circ)
			}
			fullEval := func(c cand) {
				circ, err := logic.ReplaceBlocks(res.Circuit, partition.Substitutions(blocks, trialImpls(c)))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eval.Compare(circ); err != nil {
					b.Fatal(err)
				}
			}
			incEval := func(c cand) {
				if _, err := ic.CompareCandidate(c.bi, c.impl); err != nil {
					b.Fatal(err)
				}
			}
			// Batched ladder workload: every remaining variant of each live
			// block, the same-block chunks surrogate-seeding sweeps
			// (Result.BlockErrorProfiles) issue. The scalar ladder evaluates
			// the identical candidate set one at a time, so the recorded
			// speedup isolates lane fusion from workload shape.
			batchW := *benchBatch
			if batchW < 1 {
				batchW = 1
			}
			ic.SetLanes(batchW)
			type ladder struct {
				bi    int
				impls []*logic.Circuit
			}
			var ladders []ladder
			nLadder, maxLadder := 0, 0
			for _, c := range live {
				p := res.Profiles[c.bi]
				impls := make([]*logic.Circuit, len(p.Variants))
				for vi := range p.Variants {
					impls[vi] = p.Variants[vi].Impl
				}
				ladders = append(ladders, ladder{c.bi, impls})
				nLadder += len(impls)
				if len(impls) > maxLadder {
					maxLadder = len(impls)
				}
			}
			batchReps := make([]qor.Report, maxLadder)
			scalarLadder := func() {
				for _, ld := range ladders {
					for _, impl := range ld.impls {
						if _, err := ic.CompareCandidate(ld.bi, impl); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			batchLadder := func() {
				for _, ld := range ladders {
					if err := ic.CompareCandidates(ld.bi, ld.impls, batchReps[:len(ld.impls)]); err != nil {
						b.Fatal(err)
					}
				}
			}
			// One untimed pass grows the pooled lane-packed scratch so the
			// recorded batch-allocs/op is the steady state the explorer sees.
			batchLadder()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				preprDur, _ := measureAllocs(func() {
					for _, c := range live {
						preprEval(c)
					}
				})
				fullDur, fullAllocs := measureAllocs(func() {
					for _, c := range live {
						fullEval(c)
					}
				})
				incDur, incAllocs := measureAllocs(func() {
					for _, c := range live {
						incEval(c)
					}
				})
				var scalDur, batchDur time.Duration
				var batchAllocs uint64
				scalPhases := measurePhases(func() { scalDur, _ = measureAllocs(scalarLadder) })
				batchPhases := measurePhases(func() { batchDur, batchAllocs = measureAllocs(batchLadder) })
				if i == 0 {
					n := float64(len(live))
					preprRate := n / preprDur.Seconds()
					fullRate := n / fullDur.Seconds()
					incRate := n / incDur.Seconds()
					b.Logf("Compare | %-8s | %d candidates | pre-PR %6.1f evals/s | full-rebuild %6.1f evals/s (%d allocs/op) | incremental %8.1f evals/s (%d allocs/op) | %.1fx vs pre-PR, %.1fx vs full",
						name, len(live), preprRate, fullRate, fullAllocs/uint64(len(live)),
						incRate, incAllocs/uint64(len(live)), incRate/preprRate, incRate/fullRate)
					reportMetric(b, preprRate, "prepr-candidate-evals/sec")
					reportMetric(b, fullRate, "full-candidate-evals/sec")
					reportMetric(b, incRate, "candidate-evals/sec")
					reportMetric(b, float64(fullAllocs)/n, "full-allocs/op")
					reportMetric(b, float64(incAllocs)/n, "allocs/op")
					reportMetric(b, incRate/preprRate, "candidate-eval-speedup-x")
					reportMetric(b, incRate/fullRate, "candidate-eval-speedup-vs-pooled-x")
					nl := float64(nLadder)
					scalRate := nl / scalDur.Seconds()
					batchRate := nl / batchDur.Seconds()
					b.Logf("Compare | %-8s | ladder %d candidates | scalar %8.1f evals/s (decode %2.0f%% of sim) | batch(w=%d) %8.1f evals/s (%.2f allocs/op, decode %2.0f%% of sim) | %.1fx",
						name, nLadder, scalRate, 100*scalPhases.fraction(), batchW, batchRate,
						float64(batchAllocs)/nl, 100*batchPhases.fraction(), batchRate/scalRate)
					reportMetric(b, batchRate, "batch-candidate-evals/sec")
					reportMetric(b, float64(batchAllocs)/nl, "batch-allocs/op")
					reportMetric(b, batchRate/scalRate, "batch-speedup-x")
					reportMetric(b, float64(batchW), "batch-width")
					reportMetric(b, scalPhases.fraction(), "scalar-decode-fraction")
					reportMetric(b, batchPhases.fraction(), "batch-decode-fraction")
				}
			}
		})
	}
}

// BenchmarkExplore measures the end-to-end Approximate wall-clock — profiling
// plus exploration — with the incremental engine against the pre-PR
// full-rebuild path (Config.DisableIncremental), reporting explore-steps/sec
// and the overall speedup for each circuit. A third leg runs the candidate
// sweep on multiple worker shards (Workers > 1, count from -workers) against
// the serial sweep (Workers = 1), records the parallel-sweep speedup, and
// fails if the parallel trajectory diverges from the serial one — the
// speedup row is only meaningful on machines with >= 2 CPUs, but the ratio
// is recorded either way.
func BenchmarkExplore(b *testing.B) {
	workers := *benchWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers < 2 {
		workers = 2
	}
	for _, name := range []string{"Mult8", "Adder32", "BUT", "FIR", "MAC", "SAD"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.Config{
				Samples: 1 << 13, Seed: benchSeed,
				ExploreFully: true, MaxSteps: 12,
			}
			run := func(disable bool, workers int) (time.Duration, *core.Result) {
				c := cfg
				c.DisableIncremental = disable
				c.Workers = workers
				start := time.Now()
				res, err := core.Approximate(bm.Circ, bm.Spec, c)
				if err != nil {
					b.Fatal(err)
				}
				return time.Since(start), res
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fullDur, fullRes := run(true, 0)
				incDur, incRes := run(false, 1)
				parDur, parRes := run(false, workers)
				if i == 0 {
					fullSteps, incSteps := len(fullRes.Steps), len(incRes.Steps)
					if fullSteps != incSteps {
						b.Fatalf("step count diverged: full %d, incremental %d", fullSteps, incSteps)
					}
					if len(parRes.Steps) != incSteps {
						b.Fatalf("step count diverged: Workers=1 %d, Workers=%d %d",
							incSteps, workers, len(parRes.Steps))
					}
					for s := range incRes.Steps {
						if incRes.Steps[s] != parRes.Steps[s] {
							b.Fatalf("step %d diverged between Workers=1 and Workers=%d", s, workers)
						}
					}
					fullRate := float64(fullSteps) / fullDur.Seconds()
					incRate := float64(incSteps) / incDur.Seconds()
					parRate := float64(len(parRes.Steps)) / parDur.Seconds()
					b.Logf("Explore | %-8s | %d steps | full %v (%.2f steps/s) | incremental %v (%.2f steps/s) | %.1fx | %d-worker sweep %v (%.2f steps/s, %.2fx, %d frontier pts)",
						name, incSteps, fullDur, fullRate, incDur, incRate, float64(fullDur)/float64(incDur),
						workers, parDur, parRate, float64(incDur)/float64(parDur), incRes.Frontier.Size())
					reportMetric(b, incRate, "explore-steps/sec")
					reportMetric(b, fullRate, "full-explore-steps/sec")
					reportMetric(b, float64(fullDur)/float64(incDur), "explore-speedup-x")
					reportMetric(b, parRate, "parallel-explore-steps/sec")
					reportMetric(b, float64(incDur)/float64(parDur), "parallel-sweep-speedup-x")
					reportMetric(b, float64(workers), "sweep-workers")

					// Per-block error-landscape surface (every variant of
					// every block), scalar vs lane-fused — the end-to-end
					// consumer of the batch kernel.
					batchW := *benchBatch
					if batchW < 1 {
						batchW = 1
					}
					ctx := context.Background()
					scalStart := time.Now()
					scalSurf, err := incRes.BlockErrorProfiles(ctx, 1, 1)
					if err != nil {
						b.Fatal(err)
					}
					scalSurfDur := time.Since(scalStart)
					batchStart := time.Now()
					var batchSurf [][]qor.Report
					surfPhases := measurePhases(func() {
						batchSurf, err = incRes.BlockErrorProfiles(ctx, 1, batchW)
					})
					if err != nil {
						b.Fatal(err)
					}
					batchSurfDur := time.Since(batchStart)
					nSurf := 0
					for bi := range scalSurf {
						nSurf += len(scalSurf[bi])
						for f := range scalSurf[bi] {
							if scalSurf[bi][f] != batchSurf[bi][f] {
								b.Fatalf("block %d degree %d: batched surface diverged from scalar", bi, f+1)
							}
						}
					}
					surfRate := float64(nSurf) / batchSurfDur.Seconds()
					b.Logf("Explore | %-8s | profile surface %d evals | scalar %v | batch(w=%d) %v (decode %2.0f%% of sim) | %.1fx",
						name, nSurf, scalSurfDur, batchW, batchSurfDur, 100*surfPhases.fraction(),
						float64(scalSurfDur)/float64(batchSurfDur))
					reportMetric(b, surfRate, "profile-surface-evals/sec")
					reportMetric(b, float64(scalSurfDur)/float64(batchSurfDur), "profile-surface-speedup-x")
					reportMetric(b, surfPhases.fraction(), "profile-surface-decode-fraction")
				}
			}
		})
	}
}

// Benchmarks that regenerate every table and figure of the BLASYS paper
// (DAC'18) in miniature: one testing.B target per experiment, each printing
// the same rows/series the paper reports and attaching the headline numbers
// as benchmark metrics. The full-size reproduction (1M-sample Monte Carlo)
// lives in cmd/blasys-experiments; these targets use reduced sample counts
// so `go test -bench=.` completes in minutes.
package blasys_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/blasys-go/blasys"
	"github.com/blasys-go/blasys/internal/bench"
	"github.com/blasys-go/blasys/internal/bmf"
	"github.com/blasys-go/blasys/internal/core"
	"github.com/blasys-go/blasys/internal/engine"
	"github.com/blasys-go/blasys/internal/logic"
	"github.com/blasys-go/blasys/internal/partition"
	"github.com/blasys-go/blasys/internal/qor"
	"github.com/blasys-go/blasys/internal/salsa"
	"github.com/blasys-go/blasys/internal/synth"
	"github.com/blasys-go/blasys/internal/techmap"
)

const (
	benchSamples = 1 << 13
	benchSeed    = 1
)

// BenchmarkTable1 regenerates the accurate-design metrics table.
func BenchmarkTable1(b *testing.B) {
	lib := techmap.DefaultLibrary()
	for i := 0; i < b.N; i++ {
		for _, bm := range bench.All() {
			mapped, err := techmap.Map(logic.ReorderDFS(bm.Circ), lib)
			if err != nil {
				b.Fatal(err)
			}
			met := mapped.Metrics(1<<12, benchSeed)
			if i == 0 {
				b.Logf("Table1 | %-8s | %d/%d | area %8.1f um^2 | power %7.1f uW | delay %.3f ns",
					bm.Name, bm.Circ.NumInputs(), bm.Circ.NumOutputs(), met.Area, met.Power, met.Delay)
			}
		}
	}
}

// BenchmarkFigure3 regenerates the illustrative 4x4 factorization: Hamming
// distance and synthesized area at f = 3, 2, 1 (paper: 3/6/13 and
// 19.1/16.2/9.4 um^2 from 22.3).
func BenchmarkFigure3(b *testing.B) {
	lib := techmap.DefaultLibrary()
	M := bench.Fig3Matrix()
	for i := 0; i < b.N; i++ {
		orig, err := synth.CircuitFromMatrix("fig3", M, synth.Options{Exact: true})
		if err != nil {
			b.Fatal(err)
		}
		origMapped, err := techmap.Map(orig, lib)
		if err != nil {
			b.Fatal(err)
		}
		for f := 3; f >= 1; f-- {
			res, err := bmf.Factorize(M, f, bmf.Options{})
			if err != nil {
				b.Fatal(err)
			}
			blk, err := synth.ApproxBlock(fmt.Sprintf("f%d", f), res, bmf.Or, synth.Options{Exact: true})
			if err != nil {
				b.Fatal(err)
			}
			mapped, err := techmap.Map(blk, lib)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("Fig3 | f=%d | hamming %2d (paper %d) | area %.1f/%.1f um^2",
					f, res.Hamming, map[int]int{3: 3, 2: 6, 1: 13}[f], mapped.Area(), origMapped.Area())
			}
		}
	}
}

// BenchmarkFigure4 regenerates the weighted-vs-uniform QoR comparison on
// Mult8: the weighted factorization must reach equal area at no higher
// error.
func BenchmarkFigure4(b *testing.B) {
	bm := bench.Mult8()
	for i := 0; i < b.N; i++ {
		var area [2]float64
		for vi, weighted := range []bool{false, true} {
			res, err := core.Approximate(bm.Circ, bm.Spec, core.Config{
				Samples: benchSamples, Seed: benchSeed, Weighted: weighted,
				Threshold: 0.05,
			})
			if err != nil {
				b.Fatal(err)
			}
			best := 1.0
			for _, s := range res.Steps {
				if s.Report.AvgRel <= 0.05 {
					if a := s.ModelArea / res.AccurateModelArea; a < best {
						best = a
					}
				}
			}
			area[vi] = best
		}
		if i == 0 {
			b.Logf("Fig4 | Mult8 norm area at 5%% rel err: UQoR %.3f, WQoR %.3f", area[0], area[1])
			reportMetric(b, area[0], "uqor-area")
			reportMetric(b, area[1], "wqor-area")
		}
	}
}

// BenchmarkFigure5 regenerates one trade-off trace per benchmark (miniature:
// step-capped) and reports the reachable normalized area.
func BenchmarkFigure5(b *testing.B) {
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Approximate(bm.Circ, bm.Spec, core.Config{
					Samples: benchSamples, Seed: benchSeed,
					ExploreFully: true, MaxSteps: 30, Sequence: bm.Seq,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					last := res.Steps[len(res.Steps)-1]
					b.Logf("Fig5 | %-8s | %d steps | area %.3f | avg-rel %.4f | norm-avg-abs %.3g",
						bm.Name, len(res.Steps), last.ModelArea/res.AccurateModelArea,
						last.Report.AvgRel, last.Report.NormAvgAbs)
					reportMetric(b, last.ModelArea/res.AccurateModelArea, "norm-area")
				}
			}
		})
	}
}

// BenchmarkTable2 regenerates the 5%-threshold savings table (miniature).
func BenchmarkTable2(b *testing.B) {
	lib := techmap.DefaultLibrary()
	paper := map[string]float64{"Adder32": 44.78, "Mult8": 28.77, "BUT": 7.87,
		"MAC": 47.55, "SAD": 32.80, "FIR": 19.52}
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				accurate, err := techmap.Map(logic.ReorderDFS(bm.Circ), lib)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Approximate(bm.Circ, bm.Spec, core.Config{
					Samples: benchSamples, Seed: benchSeed, Threshold: 0.05,
					Lib: lib, Sequence: bm.Seq, MaxSteps: 120,
				})
				if err != nil {
					b.Fatal(err)
				}
				met, rep, err := res.FinalMetrics(res.BestStep, benchSamples)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					sav := 100 * (accurate.Area() - met.Area) / accurate.Area()
					b.Logf("Table2 | %-8s | area savings %5.1f%% (paper %5.1f%%) at %.3f rel err",
						bm.Name, sav, paper[bm.Name], rep.AvgRel)
					reportMetric(b, sav, "area-savings-%")
				}
			}
		})
	}
}

// BenchmarkTable3 regenerates the BLASYS-vs-SALSA comparison at the 5%
// threshold (miniature; the 25% row runs in cmd/blasys-experiments).
func BenchmarkTable3(b *testing.B) {
	lib := techmap.DefaultLibrary()
	for _, name := range []string{"Mult8", "BUT"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				accurate, err := techmap.Map(logic.ReorderDFS(bm.Circ), lib)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Approximate(bm.Circ, bm.Spec, core.Config{
					Samples: benchSamples, Seed: benchSeed, Threshold: 0.05, Lib: lib,
					Sequence: bm.Seq,
				})
				if err != nil {
					b.Fatal(err)
				}
				met, _, err := res.FinalMetrics(res.BestStep, benchSamples)
				if err != nil {
					b.Fatal(err)
				}
				sres, err := salsa.Approximate(bm.Circ, bm.Spec, salsa.Config{
					Threshold: 0.05, Samples: benchSamples, Seed: benchSeed, Sequence: bm.Seq,
				})
				if err != nil {
					b.Fatal(err)
				}
				smapped, err := techmap.Map(sres.Circuit, lib)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					bl := 100 * (accurate.Area() - met.Area) / accurate.Area()
					sa := 100 * (accurate.Area() - smapped.Area()) / accurate.Area()
					b.Logf("Table3 | %-8s | BLASYS %5.1f%% vs baseline %5.1f%% area savings at 5%%",
						bm.Name, bl, sa)
					reportMetric(b, bl, "blasys-savings-%")
					reportMetric(b, sa, "salsa-savings-%")
				}
			}
		})
	}
}

// BenchmarkRuntimeSplit regenerates the paper's §4.2 runtime observation:
// BMF is fast, Monte-Carlo accuracy simulation dominates.
func BenchmarkRuntimeSplit(b *testing.B) {
	bm := bench.Adder32()
	prepared := logic.ReorderDFS(bm.Circ)
	eval, err := qor.NewEvaluator(prepared, bm.Spec, 1<<17, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("simulation-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Compare(prepared); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bmf-profile", func(b *testing.B) {
		blocks, err := partition.Decompose(prepared, partition.Options{MaxInputs: 10, MaxOutputs: 10})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			for _, blk := range blocks {
				if len(blk.Outputs) < 2 {
					continue
				}
				M, err := partition.TruthMatrix(prepared, blk)
				if err != nil {
					b.Fatal(err)
				}
				for f := 1; f < len(blk.Outputs) && f <= bmf.MaxDegree; f++ {
					if _, err := bmf.FactorizeColumns(M, f, bmf.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// BenchmarkCoreSimulator measures the raw bit-parallel simulation throughput
// that everything above is built on.
func BenchmarkCoreSimulator(b *testing.B) {
	bm := bench.Mult8()
	sim := logic.NewSimulator(bm.Circ)
	in := make([]uint64, bm.Circ.NumInputs())
	out := make([]uint64, bm.Circ.NumOutputs())
	b.SetBytes(64 * 8) // 64 samples per Run
	for i := 0; i < b.N; i++ {
		in[0] = uint64(i)
		sim.Run(in, out)
	}
}

// BenchmarkPublicAPI smoke-checks the facade end to end on a tiny circuit.
func BenchmarkPublicAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cb := blasys.NewBuilder("tiny")
		x := cb.Inputs("x", 4)
		y := cb.Inputs("y", 4)
		carry := cb.Const(false)
		var sums []blasys.NodeID
		for j := 0; j < 4; j++ {
			axb := cb.Xor(x[j], y[j])
			sums = append(sums, cb.Xor(axb, carry))
			carry = cb.Or(cb.And(x[j], y[j]), cb.And(axb, carry))
		}
		sums = append(sums, carry)
		cb.Outputs("s", sums)
		res, err := blasys.Approximate(cb.C, blasys.Unsigned("s", 5), blasys.Config{
			K: 6, M: 4, Samples: 1 << 8, Seed: benchSeed, MaxSteps: 5, ExploreFully: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.BestCircuit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSpeedup records the concurrent-service headline numbers for
// the perf trajectory (scripts/bench.sh -> BENCH_<date>.json): the
// sequential-vs-parallel exploration speedup on Mult8 and the factorization
// cache hits of a warm engine resubmission.
func BenchmarkEngineSpeedup(b *testing.B) {
	bm := bench.Mult8()
	cfg := core.Config{Samples: 1 << 12, Seed: benchSeed, ExploreFully: true, MaxSteps: 8}
	run := func(parallelism int) time.Duration {
		c := cfg
		c.Parallelism = parallelism
		start := time.Now()
		if _, err := core.Approximate(bm.Circ, bm.Spec, c); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	for i := 0; i < b.N; i++ {
		seq := run(1)
		par := run(runtime.GOMAXPROCS(0))
		if i == 0 {
			speedup := float64(seq) / float64(par)
			b.Logf("Engine | Mult8 exploration: sequential %v, parallel(%d) %v, %.2fx",
				seq, runtime.GOMAXPROCS(0), par, speedup)
			reportMetric(b, speedup, "parallel-speedup-x")
		}
	}

	// Warm-cache resubmission through the engine.
	e := engine.New(engine.Options{Workers: 1})
	defer e.Close()
	req := engine.Request{Circuit: bm.Circ, Spec: bm.Spec, Config: cfg}
	for i := 0; i < 2; i++ {
		j, err := e.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		if j.State() != engine.StateDone {
			b.Fatalf("engine job %s: %v", j.State(), j.Err())
		}
		if i == 1 {
			st := j.Snapshot(false)
			b.Logf("Engine | warm resubmission: %d cache hits, %d misses", st.CacheHits, st.CacheMisses)
			reportMetric(b, float64(st.CacheHits), "warm-cache-hits")
		}
	}
}

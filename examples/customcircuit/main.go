// Custom circuit example: build your own datapath with the circuit Builder,
// approximate it, and export the result as Verilog and BLIF.
//
// The circuit is a 12-bit squared-Euclidean-distance term (a-b)^2 — the kind
// of error-tolerant kernel approximate computing targets.
//
//	go run ./examples/customcircuit
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/blasys-go/blasys"
)

func main() {
	c, spec := buildSquaredDistance(6)
	fmt.Printf("built %s: %d inputs, %d outputs, %d gates\n",
		c.Name, c.NumInputs(), c.NumOutputs(), c.NumGates())

	res, err := blasys.Approximate(c, spec, blasys.Config{
		K: 8, M: 6, // smaller blocks for a small circuit
		Threshold: 0.10, // 10% average relative error budget
		Samples:   1 << 14,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	approx, err := res.BestCircuit()
	if err != nil {
		log.Fatal(err)
	}

	lib := blasys.DefaultLibrary()
	before, err := blasys.Map(c, lib)
	if err != nil {
		log.Fatal(err)
	}
	after, err := blasys.Map(approx, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("area %.1f -> %.1f um^2 across %d exploration steps\n",
		before.Area(), after.Area(), len(res.Steps))

	if err := os.MkdirAll("out", 0o755); err != nil {
		log.Fatal(err)
	}
	vf, err := os.Create("out/sqdist_approx.v")
	if err != nil {
		log.Fatal(err)
	}
	defer vf.Close()
	if err := blasys.WriteVerilog(vf, approx); err != nil {
		log.Fatal(err)
	}
	bf, err := os.Create("out/sqdist_approx.blif")
	if err != nil {
		log.Fatal(err)
	}
	defer bf.Close()
	if err := blasys.WriteBLIF(bf, approx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote out/sqdist_approx.v and out/sqdist_approx.blif")
}

// buildSquaredDistance constructs (a-b)^2 for n-bit unsigned a, b.
func buildSquaredDistance(n int) (*blasys.Circuit, blasys.OutputSpec) {
	b := blasys.NewBuilder("sqdist")
	a := b.Inputs("a", n)
	x := b.Inputs("b", n)

	// |a-b| via conditional two's-complement.
	diff := subtract(b, a, x) // n+1 bits two's complement
	sign := diff[len(diff)-1]
	mag := make([]blasys.NodeID, len(diff))
	for i, d := range diff {
		mag[i] = b.Xor(d, sign)
	}
	abs := addConst(b, mag, sign)[:n]

	// square via shift-and-add multiplier.
	sq := multiply(b, abs, abs)
	b.Outputs("y", sq)
	return b.C, blasys.Unsigned("y", len(sq))
}

func subtract(b *blasys.Builder, x, y []blasys.NodeID) []blasys.NodeID {
	xe := append(append([]blasys.NodeID(nil), x...), b.Const(false))
	carry := b.Const(true)
	out := make([]blasys.NodeID, len(xe))
	for i := range xe {
		yi := b.Const(true) // inverted sign extension of y
		if i < len(y) {
			yi = b.Not(y[i])
		}
		axb := b.Xor(xe[i], yi)
		out[i] = b.Xor(axb, carry)
		carry = b.Or(b.And(xe[i], yi), b.And(axb, carry))
	}
	return out
}

func addConst(b *blasys.Builder, x []blasys.NodeID, cin blasys.NodeID) []blasys.NodeID {
	carry := cin
	out := make([]blasys.NodeID, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], carry)
		carry = b.And(x[i], carry)
	}
	return out
}

func multiply(b *blasys.Builder, x, y []blasys.NodeID) []blasys.NodeID {
	n, m := len(x), len(y)
	acc := make([]blasys.NodeID, n+m)
	for i := range acc {
		acc[i] = b.Const(false)
	}
	for i := 0; i < m; i++ {
		carry := b.Const(false)
		for j := 0; j < n; j++ {
			pp := b.And(x[j], y[i])
			s1 := b.Xor(acc[i+j], pp)
			c1 := b.And(acc[i+j], pp)
			s2 := b.Xor(s1, carry)
			c2 := b.And(s1, carry)
			acc[i+j] = s2
			carry = b.Or(c1, c2)
		}
		acc[i+n] = carry
	}
	return acc
}

// Weighted-QoR example (paper §3.2 / Fig. 4): factorize with bit-significance
// weights and compare against the uniform objective on the 8-bit multiplier.
//
// Mismatches in high product bits hurt numeric accuracy far more than
// low-bit mismatches; the weighted factorization therefore reaches the same
// area at visibly lower average relative and absolute error.
//
//	go run ./examples/weightedqor
package main

import (
	"fmt"
	"log"

	"github.com/blasys-go/blasys"
)

func main() {
	b := blasys.Mult8()

	type variant struct {
		name     string
		weighted bool
	}
	results := map[string]*blasys.Result{}
	for _, v := range []variant{{"uniform (UQoR)", false}, {"weighted (WQoR)", true}} {
		res, err := blasys.Approximate(b.Circ, b.Spec, blasys.Config{
			Weighted:     v.weighted,
			Samples:      1 << 14,
			Seed:         3,
			ExploreFully: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		results[v.name] = res
		fmt.Printf("%-16s %d trade-off points\n", v.name, len(res.Steps))
	}

	// Compare: lowest achievable error at a set of area budgets.
	fmt.Println("\nbest avg relative error at each area budget (lower is better):")
	fmt.Println("  norm. area   UQoR        WQoR")
	for _, budget := range []float64{0.95, 0.9, 0.85, 0.8, 0.75} {
		u := bestErrorAtArea(results["uniform (UQoR)"], budget)
		w := bestErrorAtArea(results["weighted (WQoR)"], budget)
		marker := ""
		if w < u {
			marker = "   <- weighted wins"
		}
		fmt.Printf("  %.2f         %.5f     %.5f%s\n", budget, u, w, marker)
	}
}

// bestErrorAtArea scans a trade-off trace for the smallest error among
// points at or below the normalized area budget.
func bestErrorAtArea(res *blasys.Result, budget float64) float64 {
	best := 1.0
	for _, p := range res.Trace() {
		if p.Step < 0 {
			continue
		}
		if p.NormModelArea <= budget && p.AvgRel < best {
			best = p.AvgRel
		}
	}
	return best
}

// Accumulator example: approximate the SAD (sum of absolute differences)
// benchmark under the multi-cycle error model — the accumulator feedback
// makes per-cycle errors compound, so the flow must keep the accumulation
// path accurate while trimming the |a-b| datapath.
//
// This mirrors how the paper evaluates its MAC and SAD benchmarks (citing
// ASLAN's multi-cycle error modeling).
//
//	go run ./examples/accumulator
package main

import (
	"fmt"
	"log"

	"github.com/blasys-go/blasys"
)

func main() {
	b := blasys.SAD() // 8-bit |a-b| + 32-bit accumulator; b.Seq wires the feedback

	res, err := blasys.Approximate(b.Circ, b.Spec, blasys.Config{
		Threshold: 0.05,
		Samples:   1 << 14,
		Seed:      11,
		Sequence:  b.Seq, // accumulate for 64 cycles per chain
	})
	if err != nil {
		log.Fatal(err)
	}

	lib := blasys.DefaultLibrary()
	before, err := blasys.Map(b.Circ, lib)
	if err != nil {
		log.Fatal(err)
	}
	met, rep, err := res.FinalMetrics(res.BestStep, 1<<18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SAD with 64-cycle accumulation chains:\n")
	fmt.Printf("  area %.1f -> %.1f um^2 (%.1f%% saved)\n",
		before.Area(), met.Area, 100*(before.Area()-met.Area)/before.Area())
	fmt.Printf("  avg relative error %.4f, worst %.4f, error rate %.4f\n",
		rep.AvgRel, rep.WorstRel, rep.ErrRate)

	// Contrast with the (wrong) combinational evaluation: random accumulator
	// inputs make |a-b| look negligible and the whole datapath gets gutted.
	resComb, err := blasys.Approximate(b.Circ, b.Spec, blasys.Config{
		Threshold: 0.05,
		Samples:   1 << 14,
		Seed:      11,
		// no Sequence: plain Monte-Carlo over all 48 inputs
	})
	if err != nil {
		log.Fatal(err)
	}
	metComb, _, err := resComb.FinalMetrics(resComb.BestStep, 1<<16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor contrast, combinational evaluation of the same budget keeps only %.1f um^2\n", metComb.Area)
	fmt.Println("(the accumulator input dwarfs |a-b|, so everything looks droppable —")
	fmt.Println(" which is why the sequential model matters for accumulator designs)")
}

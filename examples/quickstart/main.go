// Quickstart: approximate the paper's 8-bit multiplier benchmark at a 5%
// average-relative-error budget and print the accuracy/area trade-off.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/blasys-go/blasys"
)

func main() {
	// Grab a benchmark circuit: the 8x8 array multiplier from the paper's
	// Table 1 (16 inputs, 16 outputs), along with the output interpretation
	// (one unsigned 16-bit product) the error metrics need.
	b := blasys.Mult8()

	// Map the accurate design first, for the baseline numbers.
	lib := blasys.DefaultLibrary()
	accurate, err := blasys.Map(b.Circ, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accurate multiplier: %d cells, %.1f um^2\n",
		accurate.NumCells(), accurate.Area())

	// Run the BLASYS flow: decompose into 10x10 blocks, factorize each
	// block's truth table at every degree, then greedily approximate
	// whichever block hurts accuracy the least until 5% error.
	res, err := blasys.Approximate(b.Circ, b.Spec, blasys.Config{
		Threshold: 0.05, // 5% average relative error
		Metric:    blasys.AvgRelative,
		Samples:   1 << 14, // Monte-Carlo samples during exploration
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d design points across %d blocks\n",
		len(res.Steps), len(res.Profiles))

	// The chosen design: re-synthesize, map, and report.
	met, rep, err := res.FinalMetrics(res.BestStep, 1<<18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximate multiplier: %.1f um^2 (%.1f%% smaller) at %.2f%% avg relative error\n",
		met.Area, 100*(accurate.Area()-met.Area)/accurate.Area(), 100*rep.AvgRel)

	// Every intermediate point is available for plotting the trade-off.
	fmt.Println("\nfirst trade-off points (normalized area vs error):")
	for _, p := range res.Trace()[:6] {
		fmt.Printf("  step %3d: area %.3f  avg-rel-err %.5f\n", p.Step, p.NormModelArea, p.AvgRel)
	}
}
